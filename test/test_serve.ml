(* Serving front-end tests.

   - admission gate: hysteresis never flaps inside the (untrip, trip)
     band, pressure trips it regardless of depth, inconsistent thresholds
     are rejected;
   - shed requests get the typed [R_overloaded] reply and provably never
     reach the engine (the application write callback is the witness);
   - deficit-round-robin fairness: a cold tenant's single request does
     not wait behind a hot tenant's entire backlog;
   - closed-loop and open-loop arrivals agree on goodput at low load
     (both far from the knee, nothing shed);
   - by-reference descriptor handoff: the session loses write access at
     [submit] and regains it with the reply;
   - the seeded [Skip_admission_gate] mutant never sheds and lets the
     queue overrun its capacity bound (the campaign catches the
     durability half of the bug; this is the shedding half);
   - log2 latency histograms (satellite of the bench export) and the
     tenant-skew workload generator;
   - [Drain_stalled] diagnostics carry the front-end queue context. *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Stats = Dudetm_sim.Stats
module Config = Dudetm_core.Config
module Tenant_mix = Dudetm_workloads.Tenant_mix
module Serve = Dudetm_serve.Serve
module Admission = Dudetm_serve.Admission
module SL = Dudetm_serve.Serve_load
module Srv = SL.Srv

let check = Alcotest.check

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------ admission ------------------------------- *)

let test_admission_no_flap () =
  let g = Admission.create ~trip:6 ~untrip:2 in
  (* Oscillate strictly inside the hysteresis band: no transitions. *)
  for _ = 1 to 50 do
    ignore (Admission.observe g ~depth:3 ~pressure:false);
    ignore (Admission.observe g ~depth:5 ~pressure:false)
  done;
  check Alcotest.int "no trips inside the band" 0 (Admission.trips g);
  check Alcotest.int "no untrips inside the band" 0 (Admission.untrips g);
  (* Trip once, then oscillate inside the band again: still shedding. *)
  ignore (Admission.observe g ~depth:6 ~pressure:false);
  for _ = 1 to 50 do
    ignore (Admission.observe g ~depth:5 ~pressure:false);
    ignore (Admission.observe g ~depth:3 ~pressure:false)
  done;
  check Alcotest.int "one trip" 1 (Admission.trips g);
  check Alcotest.bool "still shedding inside the band" true
    (Admission.state g = Admission.Shedding);
  (* Reopen only at the untrip threshold. *)
  ignore (Admission.observe g ~depth:2 ~pressure:false);
  check Alcotest.int "one untrip" 1 (Admission.untrips g);
  check Alcotest.bool "open again" true (Admission.state g = Admission.Open)

let test_admission_pressure () =
  let g = Admission.create ~trip:100 ~untrip:10 in
  check Alcotest.bool "ring pressure trips at depth 0" false
    (Admission.admits g ~depth:0 ~pressure:true);
  (* Depth below untrip but pressure still on: stays shedding. *)
  check Alcotest.bool "holds while pressure lasts" false
    (Admission.admits g ~depth:0 ~pressure:true);
  check Alcotest.bool "reopens when pressure clears" true
    (Admission.admits g ~depth:0 ~pressure:false)

let test_admission_invalid () =
  let raised =
    try
      ignore (Admission.create ~trip:2 ~untrip:5);
      false
    with Admission.Invalid_admission _ -> true
  in
  check Alcotest.bool "untrip >= trip rejected" true raised

(* --------------------- direct-pipeline test fixture ---------------------- *)

let slot_of_key key = 64 + (8 * Int64.to_int key)

(* [entered] counts application-body entries: a shed request that ever
   reaches the engine would bump it. *)
let make_app entered =
  {
    Srv.shard_of = (fun _ -> 0);
    write =
      (fun tx ~shard ~key ~payload ->
        incr entered;
        Srv.Sh.write tx ~shard (slot_of_key key) payload);
    read = (fun tx ~shard ~key -> Srv.Sh.read tx ~shard (slot_of_key key));
  }

let write_op i = Serve.Write { key = Int64.of_int i; payload = Int64.of_int (i + 1) }

(* ------------------- shed: typed, and never executed --------------------- *)

let test_shed_typed_never_executed () =
  let scfg =
    {
      Serve.default_config with
      Serve.queue_capacity = 4;
      trip_depth = 3;
      untrip_depth = 1;
    }
  in
  let entered = ref 0 in
  let n = 50 in
  ignore
    (Sched.run (fun () ->
         let sh = Srv.Sh.create ~nshards:1 (SL.engine_cfg ~workers:2 ()) in
         let srv = Srv.create ~scfg ~app:(make_app entered) ~ntenants:1 sh in
         Srv.start srv;
         (* Flood without yielding: the dispatchers cannot drain between
            submits, so the queue hits its bound and the gate trips. *)
         let descs = List.init n (fun i -> Srv.make_desc ~tenant:0 ~session:0 (write_op i)) in
         let accepted = List.filter (fun d -> Srv.submit srv d) descs in
         List.iter (fun d -> ignore (Srv.await d)) accepted;
         let executed = ref 0 and shed = ref 0 and other = ref 0 in
         List.iter
           (fun d ->
             match Srv.reply d with
             | Serve.R_executed _ -> incr executed
             | Serve.R_overloaded -> incr shed
             | _ -> incr other)
           descs;
         check Alcotest.bool "some requests were shed" true (!shed > 0);
         check Alcotest.bool "some requests executed" true (!executed > 0);
         check Alcotest.int "every reply is executed or overloaded" 0 !other;
         check Alcotest.int "all accounted for" n (!executed + !shed);
         check Alcotest.int "shed total matches" !shed (Srv.shed_total srv);
         (* The witness: the engine ran the application body exactly once
            per executed request — shed requests never reached it. *)
         check Alcotest.int "shed never reached the engine" !executed !entered;
         Srv.drain srv;
         Srv.stop srv))

(* ----------------------------- DRR fairness ------------------------------ *)

let test_fairness_cold_tenant () =
  let scfg =
    {
      Serve.default_config with
      Serve.queue_capacity = 64;
      trip_depth = 60;
      untrip_depth = 8;
      drr_quantum = 2;
    }
  in
  let entered = ref 0 in
  let hot_n = 40 in
  ignore
    (Sched.run (fun () ->
         let sh = Srv.Sh.create ~nshards:1 (SL.engine_cfg ~workers:2 ()) in
         let srv = Srv.create ~scfg ~app:(make_app entered) ~ntenants:2 sh in
         Srv.start srv;
         (* Tenant 0 floods a backlog; tenant 1 then submits one request.
            Deficit-round-robin must serve the cold tenant within a
            round, not behind the whole hot backlog. *)
         let hot =
           List.init hot_n (fun i ->
               let d = Srv.make_desc ~tenant:0 ~session:0 (write_op i) in
               check Alcotest.bool "hot accepted" true (Srv.submit srv d);
               d)
         in
         let cold = Srv.make_desc ~tenant:1 ~session:0 (write_op 1000) in
         check Alcotest.bool "cold accepted" true (Srv.submit srv cold);
         (match Srv.await cold with
         | Serve.R_executed _ -> ()
         | _ -> Alcotest.fail "cold request must execute");
         let hot_done_at_cold_reply = Srv.tenant_done srv 0 in
         check Alcotest.bool
           (Printf.sprintf "cold reply arrived with only %d/%d hot done"
              hot_done_at_cold_reply hot_n)
           true
           (hot_done_at_cold_reply < hot_n / 2);
         List.iter (fun d -> ignore (Srv.await d)) hot;
         check Alcotest.int "hot backlog all executed" hot_n (Srv.tenant_done srv 0);
         Srv.drain srv;
         Srv.stop srv))

(* ---------------------- closed = open at low load ------------------------ *)

let test_closed_open_agree () =
  let closed =
    SL.run ~seed:11 ~nshards:1 ~ntenants:2 ~sessions:2 ~reqs:60
      ~mode:(SL.Closed { think = 20000 })
      ()
  in
  check Alcotest.int "closed: nothing shed at low load" 0 closed.SL.r_shed;
  let open_ =
    SL.run ~seed:11 ~nshards:1 ~ntenants:2 ~sessions:2 ~reqs:60
      ~mode:(SL.Open { ktps = closed.SL.r_achieved_ktps })
      ()
  in
  check Alcotest.int "open: nothing shed at low load" 0 open_.SL.r_shed;
  check Alcotest.int "open: arrivals never window-blocked" 0 open_.SL.r_blocked;
  let ratio = open_.SL.r_achieved_ktps /. closed.SL.r_achieved_ktps in
  check Alcotest.bool
    (Printf.sprintf "goodput agrees within 25%% (ratio %.2f)" ratio)
    true
    (ratio > 0.75 && ratio < 1.25)

(* ----------------------- descriptor ownership ---------------------------- *)

let test_descriptor_ownership () =
  let entered = ref 0 in
  ignore
    (Sched.run (fun () ->
         let sh = Srv.Sh.create ~nshards:1 (SL.engine_cfg ~workers:2 ()) in
         let srv = Srv.create ~app:(make_app entered) ~ntenants:1 sh in
         Srv.start srv;
         let d = Srv.make_desc ~tenant:0 ~session:0 (write_op 0) in
         Srv.set_op d (write_op 1);
         check Alcotest.bool "accepted" true (Srv.submit srv d);
         let in_flight_raises f =
           try
             f ();
             false
           with Serve.Descriptor_in_flight _ -> true
         in
         check Alcotest.bool "set_op while in flight raises" true
           (in_flight_raises (fun () -> Srv.set_op d (write_op 2)));
         check Alcotest.bool "reply while in flight raises" true
           (in_flight_raises (fun () -> ignore (Srv.reply d)));
         check Alcotest.bool "double submit raises" true
           (in_flight_raises (fun () -> ignore (Srv.submit srv d)));
         (match Srv.await d with
         | Serve.R_executed _ -> ()
         | _ -> Alcotest.fail "write must execute");
         (* Ownership is back: the session may touch it again. *)
         Srv.set_op d (write_op 3);
         check Alcotest.bool "resubmit after reply accepted" true (Srv.submit srv d);
         ignore (Srv.await d);
         Srv.drain srv;
         Srv.stop srv))

(* --------------------------- mutant shedding ----------------------------- *)

let test_mutant_never_sheds () =
  let scfg =
    {
      Serve.default_config with
      Serve.queue_capacity = 4;
      trip_depth = 3;
      untrip_depth = 1;
      slots_per_session = 16;
    }
  in
  let r =
    SL.run ~scfg ~fault:Config.Skip_admission_gate ~seed:11 ~nshards:1
      ~ntenants:2 ~sessions:2 ~reqs:40
      ~mode:(SL.Open { ktps = 50000.0 })
      ()
  in
  check Alcotest.int "mutant sheds nothing" 0 r.SL.r_shed;
  check Alcotest.bool
    (Printf.sprintf "mutant queue overran its capacity bound (hwm %d)"
       r.SL.r_depth_hwm)
    true
    (r.SL.r_depth_hwm > scfg.Serve.queue_capacity)

(* ------------------------- log2 histograms ------------------------------- *)

let test_log2_histogram () =
  check Alcotest.int "bucket of 1" 0 (Stats.Latency.log2_bucket 1);
  check Alcotest.int "bucket of 2" 1 (Stats.Latency.log2_bucket 2);
  check Alcotest.int "bucket of 3" 1 (Stats.Latency.log2_bucket 3);
  check Alcotest.int "bucket of 1000" 9 (Stats.Latency.log2_bucket 1000);
  let r = Stats.Latency.create () in
  List.iter (Stats.Latency.record r) [ 1; 2; 3; 1000 ];
  check
    Alcotest.(list (pair int int))
    "sparse histogram"
    [ (0, 1); (1, 2); (9, 1) ]
    (Stats.Latency.log2_histogram r);
  check Alcotest.string "json export keyed by bucket floor"
    "[[1,1],[2,2],[512,1]]"
    (Dudetm_harness.Harness.histogram_json r)

(* ---------------------------- tenant mix --------------------------------- *)

let test_tenant_mix () =
  let ntenants = 4 and keys_per_tenant = 256 and nshards = 4 in
  let mix = Tenant_mix.create ~ntenants ~keys_per_tenant ~nshards () in
  let rng = Rng.create 42 in
  for tenant = 0 to ntenants - 1 do
    let lo, hi = Tenant_mix.tenant_range mix ~tenant in
    check Alcotest.bool "range is the tenant's stripe" true
      (Int64.to_int lo = tenant * keys_per_tenant
      && Int64.to_int hi = (tenant + 1) * keys_per_tenant);
    for _ = 1 to 200 do
      let key = Tenant_mix.sample_key mix ~tenant rng in
      check Alcotest.bool "key inside the tenant's stripe" true
        (key >= lo && key < hi);
      let s = Tenant_mix.shard_of mix key in
      check Alcotest.bool "shard routing in range" true (s >= 0 && s < nshards)
    done
  done;
  (* Zipf skew: the hottest key of a tenant dominates a uniform draw. *)
  let counts = Hashtbl.create 64 in
  for _ = 1 to 2000 do
    let k = Tenant_mix.sample_key mix ~tenant:0 rng in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let hottest = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  check Alcotest.bool
    (Printf.sprintf "zipf skew (hottest key drawn %d/2000)" hottest)
    true (hottest > 100);
  (* Read fraction tracks ro_permille. *)
  let reads = ref 0 in
  for _ = 1 to 2000 do
    if Tenant_mix.is_read mix ~tenant:0 rng then incr reads
  done;
  check Alcotest.bool
    (Printf.sprintf "read fraction near 50%% (%d/2000)" !reads)
    true
    (!reads > 800 && !reads < 1200)

(* ------------------------ drain diagnostics ------------------------------ *)

let test_drain_context () =
  let entered = ref 0 in
  ignore
    (Sched.run (fun () ->
         let sh = Srv.Sh.create ~nshards:2 (SL.engine_cfg ~workers:2 ()) in
         let srv = Srv.create ~app:(make_app entered) ~ntenants:1 sh in
         ignore srv;
         for s = 0 to 1 do
           let diag = Srv.Engine.drain_diagnostic (Srv.Sh.engine sh s) in
           check Alcotest.bool
             (Printf.sprintf "shard %d diagnostic carries queue context" s)
             true
             (contains diag "queue_depth" && contains diag "shed")
         done))

let suite =
  [
    Alcotest.test_case "admission: no flap inside hysteresis band" `Quick
      test_admission_no_flap;
    Alcotest.test_case "admission: ring pressure trips the gate" `Quick
      test_admission_pressure;
    Alcotest.test_case "admission: inconsistent thresholds rejected" `Quick
      test_admission_invalid;
    Alcotest.test_case "shed replies typed, never reach the engine" `Quick
      test_shed_typed_never_executed;
    Alcotest.test_case "DRR: cold tenant not stuck behind hot backlog" `Quick
      test_fairness_cold_tenant;
    Alcotest.test_case "closed and open loops agree at low load" `Quick
      test_closed_open_agree;
    Alcotest.test_case "descriptor handoff: in-flight access raises" `Quick
      test_descriptor_ownership;
    Alcotest.test_case "skip-admission-gate mutant never sheds" `Quick
      test_mutant_never_sheds;
    Alcotest.test_case "log2 latency histogram and export" `Quick
      test_log2_histogram;
    Alcotest.test_case "tenant mix: stripes, routing, skew" `Quick
      test_tenant_mix;
    Alcotest.test_case "drain diagnostic carries front-end context" `Quick
      test_drain_context;
  ]

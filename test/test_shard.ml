(* Sharded DudeTM tests: single-shard and cross-shard transactions, the
   vector watermark, cross-shard all-or-nothing crash recovery, and the
   recovery vote. *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module Sh = Dudetm_shard.Shard.Make (Dudetm_tm.Tinystm)

let check = Alcotest.check

exception Crashed

let small_cfg ?(nthreads = 3) ?(combine = false) ?(fault = Config.No_fault) () =
  {
    Config.default with
    Config.heap_size = 1 lsl 16;
    nthreads;
    vlog_capacity = 256;
    plog_size = 1 lsl 13;
    meta_size = 8192;
    combine;
    checkpoint_records = 2;
    seed = 7;
    fault;
  }

(* Word layout inside every shard's root block:
   0        balance (cross-shard transfers preserve the global sum)
   8        single-shard local counter
   16+8*p   pairwise stamp: the latest transfer between this shard and
            partner [p].  Both sides of a transfer write the same stamp, so
            after any crash + recovery the two sides of every pair must
            agree — the all-or-nothing oracle. *)
let balance_off = 0
let local_off = 8
let pair_off p = 16 + (8 * p)

let initial_balance = 1_000L

let seed_shards sh nshards =
  for s = 0 to nshards - 1 do
    ignore
      (Sh.atomically sh ~thread:0 ~shards:[ s ] (fun tx ->
           Sh.write tx ~shard:s balance_off initial_balance))
  done

let transfer sh ~thread ~a ~b ~stamp amt =
  Sh.atomically sh ~thread ~shards:[ a; b ] (fun tx ->
      let ba = Sh.read tx ~shard:a balance_off in
      let bb = Sh.read tx ~shard:b balance_off in
      Sh.write tx ~shard:a balance_off (Int64.sub ba amt);
      Sh.write tx ~shard:b balance_off (Int64.add bb amt);
      Sh.write tx ~shard:a (pair_off b) (Int64.of_int stamp);
      Sh.write tx ~shard:b (pair_off a) (Int64.of_int stamp))

let bump sh ~thread s =
  Sh.atomically sh ~thread ~shards:[ s ] (fun tx ->
      Sh.write tx ~shard:s local_off (Int64.add (Sh.read tx ~shard:s local_off) 1L))

(* The all-or-nothing + sum oracle on a recovered (or drained) system.
   Every transfer preserves the sum among shards whose seed is durable, and
   a shard's seed is tid 1 on that shard — durable whenever anything later
   on the shard is (contiguity).  Both sides of every transfer write the
   same pairwise stamp, so the sides must agree. *)
let verify_state ~nshards sh =
  for a = 0 to nshards - 1 do
    for b = a + 1 to nshards - 1 do
      check Alcotest.int64
        (Printf.sprintf "pair stamp %d<->%d" a b)
        (Sh.Engine.heap_read_u64 (Sh.engine sh a) (pair_off b))
        (Sh.Engine.heap_read_u64 (Sh.engine sh b) (pair_off a))
    done
  done;
  let sum = ref 0L and seeded = ref 0 in
  for s = 0 to nshards - 1 do
    sum := Int64.add !sum (Sh.Engine.heap_read_u64 (Sh.engine sh s) balance_off);
    if Sh.Engine.durable_id (Sh.engine sh s) >= 1 then incr seeded
  done;
  check Alcotest.int64 "sum = seeds still standing"
    (Int64.mul initial_balance (Int64.of_int !seeded))
    !sum

(* ------------------------------------------------------------------ *)

let test_basic_commit () =
  let nshards = 3 in
  let sh = Sh.create ~nshards (small_cfg ()) in
  ignore
    (Sched.run (fun () ->
         Sh.start sh;
         seed_shards sh nshards;
         for k = 1 to 20 do
           let a = k mod nshards in
           let b = (k + 1) mod nshards in
           (match transfer sh ~thread:(k mod 3) ~a ~b ~stamp:k 5L with
           | Some (_, Sh.Ack_cross { gtid }) -> check Alcotest.int "dense gtids" k gtid
           | _ -> Alcotest.fail "transfer should commit with a cross ack");
           ignore (bump sh ~thread:(k mod 3) (k mod nshards))
         done;
         Sh.stop sh));
  verify_state ~nshards sh;
  check Alcotest.int "frontier covers all cross txs" 20 (Sh.global_frontier sh);
  let dv = Sh.durable_vector sh and ev = Sh.effective_vector sh in
  Array.iteri (fun s d -> check Alcotest.int "eff = durable when drained" d ev.(s)) dv;
  check Alcotest.int "cross txs counted" 20
    (Dudetm_sim.Stats.get (Sh.stats sh) "cross_txs")

let test_wait_durable_cross () =
  let nshards = 2 in
  let sh = Sh.create ~nshards (small_cfg ()) in
  ignore
    (Sched.run (fun () ->
         Sh.start sh;
         seed_shards sh nshards;
         (match transfer sh ~thread:0 ~a:0 ~b:1 ~stamp:1 7L with
         | Some (_, (Sh.Ack_cross { gtid } as ack)) ->
           Sh.wait_durable sh ack;
           Alcotest.(check bool)
             "frontier reached the acked gtid" true
             (Sh.global_frontier sh >= gtid)
         | _ -> Alcotest.fail "expected a cross ack");
         Sh.stop sh))

let test_single_shard_ack_and_abort () =
  let sh = Sh.create ~nshards:2 (small_cfg ()) in
  ignore
    (Sched.run (fun () ->
         Sh.start sh;
         (match bump sh ~thread:0 1 with
         | Some (_, (Sh.Ack_local { shard = 1; _ } as ack)) -> Sh.wait_durable sh ack
         | _ -> Alcotest.fail "single-shard tx should yield a local ack");
         (match
            Sh.atomically sh ~thread:0 ~shards:[ 0 ] (fun tx ->
                Sh.read tx ~shard:0 balance_off)
          with
         | Some (0L, Sh.Ack_read_only) -> ()
         | _ -> Alcotest.fail "read-only tx should yield a read-only ack");
         (* abort rolls back every open sub-transaction *)
         (match
            Sh.atomically sh ~thread:0 ~shards:[ 0; 1 ] (fun tx ->
                Sh.write tx ~shard:0 balance_off 99L;
                Sh.write tx ~shard:1 balance_off 99L;
                Sh.abort tx)
          with
         | None -> ()
         | Some _ -> Alcotest.fail "aborted tx should return None");
         Sh.stop sh));
  check Alcotest.int64 "abort rolled back shard 0" 0L
    (Sh.Engine.heap_read_u64 (Sh.engine sh 0) balance_off);
  check Alcotest.int64 "abort rolled back shard 1" 0L
    (Sh.Engine.heap_read_u64 (Sh.engine sh 1) balance_off);
  check Alcotest.int "no gtid drawn for aborts/single/readonly" 0 (Sh.global_frontier sh)

let test_undeclared_shard_rejected () =
  let sh = Sh.create ~nshards:2 (small_cfg ()) in
  ignore
    (Sched.run (fun () ->
         Sh.start sh;
         (try
            ignore
              (Sh.atomically sh ~thread:0 ~shards:[ 0 ] (fun tx ->
                   Sh.write tx ~shard:1 balance_off 1L));
            Alcotest.fail "undeclared shard should be rejected"
          with Invalid_argument _ -> ());
         Sh.stop sh))

(* Run a mixed workload and cut power at persist boundary [crash_at]
   (counted across all shard devices); [None] runs to a clean stop.
   Returns the instance, the boundary count and whether it crashed. *)
let run_until_crash ?(fault = Config.No_fault) ~nshards ~txs ~crash_at () =
  let cfg = small_cfg ~fault () in
  let sh = Sh.create ~nshards cfg in
  let sites = ref 0 in
  let hook () =
    incr sites;
    match crash_at with Some k when !sites = k -> raise Crashed | _ -> ()
  in
  let disarm () =
    for s = 0 to nshards - 1 do
      Nvm.set_persist_hook (Sh.nvm sh s) None
    done
  in
  let crashed = ref false in
  (try
     ignore
       (Sched.run (fun () ->
            Sh.start sh;
            seed_shards sh nshards;
            for s = 0 to nshards - 1 do
              Nvm.set_persist_hook (Sh.nvm sh s) (Some hook)
            done;
            for k = 1 to txs do
              let a = k mod nshards in
              let b = (k + 1) mod nshards in
              ignore (transfer sh ~thread:(k mod 3) ~a ~b ~stamp:k 5L);
              ignore (bump sh ~thread:(k mod 3) (k mod nshards))
            done;
            disarm ();
            Sh.stop sh))
   with Crashed -> crashed := true);
  disarm ();
  if !crashed then
    for s = 0 to nshards - 1 do
      Nvm.crash (Sh.nvm sh s)
    done;
  (sh, !sites, !crashed)

let test_crash_all_or_nothing () =
  let nshards = 3 in
  let _, total, crashed = run_until_crash ~nshards ~txs:12 ~crash_at:None () in
  check Alcotest.bool "clean run does not crash" false crashed;
  Alcotest.(check bool) "clean run has persist boundaries" true (total > 0);
  let rng = Rng.create 99 in
  for _ = 1 to 16 do
    let k = 1 + Rng.int rng total in
    let sh, _, crashed = run_until_crash ~nshards ~txs:12 ~crash_at:(Some k) () in
    if crashed then begin
      let sh2, _rec = Sh.attach ~nshards (Sh.config sh) (Array.init nshards (Sh.nvm sh)) in
      verify_state ~nshards sh2
    end
  done

(* A recovered system keeps working: attach, run more transfers, stop. *)
let test_recover_and_continue () =
  let nshards = 3 in
  let _, total, _ = run_until_crash ~nshards ~txs:12 ~crash_at:None () in
  let sh, _, crashed = run_until_crash ~nshards ~txs:12 ~crash_at:(Some (total / 2)) () in
  Alcotest.(check bool) "crashed mid-run" true crashed;
  let sh2, _ = Sh.attach ~nshards (Sh.config sh) (Array.init nshards (Sh.nvm sh)) in
  let before = Sh.global_frontier sh2 in
  ignore
    (Sched.run (fun () ->
         Sh.start sh2;
         for k = 1 to 6 do
           let a = k mod nshards in
           let b = (k + 1) mod nshards in
           ignore (transfer sh2 ~thread:(k mod 3) ~a ~b ~stamp:(1000 + k) 1L)
         done;
         Sh.stop sh2));
  verify_state ~nshards sh2;
  check Alcotest.int "fresh gtids continue after recovery" (before + 6)
    (Sh.global_frontier sh2)

let suite =
  [
    Alcotest.test_case "basic cross-shard commit" `Quick test_basic_commit;
    Alcotest.test_case "cross ack wait_durable" `Quick test_wait_durable_cross;
    Alcotest.test_case "acks and aborts" `Quick test_single_shard_ack_and_abort;
    Alcotest.test_case "undeclared shard rejected" `Quick test_undeclared_shard_rejected;
    Alcotest.test_case "crash all-or-nothing" `Slow test_crash_all_or_nothing;
    Alcotest.test_case "recover and continue" `Slow test_recover_and_continue;
  ]

(* Redo-log machinery: entries, volatile ring, checksums, combination. *)

module Log_entry = Dudetm_log.Log_entry
module Vlog = Dudetm_log.Vlog
module Checksum = Dudetm_log.Checksum
module Combine = Dudetm_log.Combine
module Sched = Dudetm_sim.Sched

let check = Alcotest.check

let entry_gen =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun a v -> Log_entry.Write { addr = a * 8; value = Int64.of_int v })
          (int_range 0 100000) (int_range (-1000000) 1000000);
        map2 (fun o l -> Log_entry.Alloc { off = o * 8; len = 1 + l }) (int_range 0 10000)
          (int_range 0 500);
        map2 (fun o l -> Log_entry.Free { off = o * 8; len = 1 + l }) (int_range 0 10000)
          (int_range 0 500);
        map (fun tid -> Log_entry.Tx_end { tid = 1 + tid }) (int_range 0 1000000);
      ])

let prop_encode_roundtrip =
  QCheck2.Test.make ~name:"log entries: encode/decode roundtrip" ~count:300
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 100) entry_gen)
    (fun entries ->
      Log_entry.decode_list (Log_entry.encode_list entries) = entries)

let test_encode_sizes () =
  let w = Log_entry.Write { addr = 8; value = 1L } in
  let e = Log_entry.Tx_end { tid = 1 } in
  check Alcotest.int "write entry is 17 bytes" 17 (Log_entry.encoded_size w);
  check Alcotest.int "end mark is 9 bytes" 9 (Log_entry.encoded_size e);
  check Alcotest.int "encode_list concatenates" 26
    (Bytes.length (Log_entry.encode_list [ w; e ]))

let test_decode_rejects_garbage () =
  Alcotest.check_raises "bad tag rejected" (Invalid_argument "Log_entry.decode_list: bad tag 'Z'")
    (fun () -> ignore (Log_entry.decode_list (Bytes.of_string "Zxxxxxxxxxxxxxxxx")));
  Alcotest.check_raises "truncation rejected"
    (Invalid_argument "Log_entry.decode_list: truncated Write") (fun () ->
      ignore (Log_entry.decode_list (Bytes.of_string "Wshort")))

let test_tids_extraction () =
  let entries =
    [
      Log_entry.Write { addr = 0; value = 1L };
      Log_entry.Tx_end { tid = 5 };
      Log_entry.Write { addr = 8; value = 2L };
      Log_entry.Tx_end { tid = 6 };
    ]
  in
  check Alcotest.(list int) "tids in order" [ 5; 6 ] (Log_entry.tids entries)

(* ------------------------------- vlog -------------------------------- *)

let w addr = Log_entry.Write { addr; value = Int64.of_int addr }

let test_vlog_basic () =
  let v = Vlog.create ~capacity:16 () in
  Vlog.append v (w 0);
  Vlog.append v (w 8);
  check Alcotest.int "unsealed entries invisible to consumer" 0 (Vlog.committed v - Vlog.head v);
  Vlog.append_end v ~tid:1;
  check Alcotest.int "sealed entries visible" 3 (Vlog.committed v - Vlog.head v);
  check Alcotest.bool "entry readable" true (Vlog.get v 0 = w 0);
  Vlog.consume_to v (Vlog.committed v);
  check Alcotest.int "consumed" 0 (Vlog.committed v - Vlog.head v)

let test_vlog_abort_pop () =
  let v = Vlog.create ~capacity:16 () in
  Vlog.append v (w 0);
  Vlog.append_end v ~tid:1;
  Vlog.append v (w 8);
  Vlog.append v (w 16);
  check Alcotest.int "two unsealed entries" 2 (Vlog.current_tx_entries v);
  Vlog.pop_current_tx v;
  check Alcotest.int "aborted entries dropped" 0 (Vlog.current_tx_entries v);
  check Alcotest.int "sealed prefix intact" 2 (Vlog.committed v - Vlog.head v)

let test_vlog_wraparound () =
  let v = Vlog.create ~capacity:8 () in
  for round = 1 to 10 do
    Vlog.append v (w (8 * round));
    Vlog.append v (w (8 * round));
    Vlog.append_end v ~tid:round;
    (* Consumer keeps pace, forcing the ring to wrap repeatedly. *)
    check Alcotest.bool "entry content correct across wrap" true
      (Vlog.get v (Vlog.head v) = w (8 * round));
    Vlog.consume_to v (Vlog.committed v)
  done;
  check Alcotest.int "total appended" 30 (Vlog.total_appended v)

let test_vlog_blocks_when_full () =
  (* Producer must block on a full ring until the consumer frees space. *)
  let v = Vlog.create ~capacity:4 () in
  let produced = ref 0 in
  ignore
    (Sched.run (fun () ->
         ignore
           (Sched.spawn "producer" (fun () ->
                for i = 1 to 10 do
                  Vlog.append v (w (8 * i));
                  Vlog.append_end v ~tid:i;
                  incr produced
                done));
         ignore
           (Sched.spawn "consumer" (fun () ->
                let consumed = ref 0 in
                while !consumed < 20 do
                  Sched.advance 50;
                  let avail = Vlog.committed v - Vlog.head v in
                  consumed := !consumed + avail;
                  Vlog.consume_to v (Vlog.committed v)
                done))));
  check Alcotest.int "producer finished despite tiny ring" 10 !produced;
  check Alcotest.bool "producer blocked at least once" true (Vlog.producer_blocks v > 0)

let test_vlog_unbounded_grows () =
  let v = Vlog.create ~unbounded:true ~capacity:4 () in
  for i = 1 to 100 do
    Vlog.append v (w (8 * i))
  done;
  Vlog.append_end v ~tid:1;
  check Alcotest.int "grew beyond initial capacity" 101 (Vlog.length v);
  check Alcotest.int "no blocking in unbounded mode" 0 (Vlog.producer_blocks v);
  (* Contents survive growth. *)
  check Alcotest.bool "first entry intact" true (Vlog.get v 0 = w 8);
  check Alcotest.bool "last entry intact" true (Vlog.get v 99 = w 800)

let test_vlog_clear () =
  let v = Vlog.create ~capacity:8 () in
  Vlog.append v (w 0);
  Vlog.append_end v ~tid:1;
  Vlog.clear v;
  check Alcotest.int "empty after clear" 0 (Vlog.length v)

(* ----------------------------- checksum ------------------------------ *)

let test_crc_known_value () =
  (* IEEE CRC-32 of "123456789" is 0xCBF43926. *)
  check Alcotest.int32 "crc32 check vector" 0xCBF43926l
    (Checksum.crc32_bytes (Bytes.of_string "123456789"))

let test_crc_detects_flip () =
  let b = Bytes.of_string "some log record payload" in
  let c = Checksum.crc32_bytes b in
  Bytes.set b 3 'X';
  check Alcotest.bool "bit flip changes crc" true (c <> Checksum.crc32_bytes b)

let prop_crc_chaining =
  QCheck2.Test.make ~name:"crc32: chained equals whole" ~count:200
    QCheck2.Gen.(tup2 (string_size (int_range 0 50)) (string_size (int_range 0 50)))
    (fun (a, b) ->
      let whole = Checksum.crc32_bytes (Bytes.of_string (a ^ b)) in
      let c1 = Checksum.crc32 (Bytes.of_string a) 0 (String.length a) in
      let chained = Checksum.crc32 ~init:c1 (Bytes.of_string b) 0 (String.length b) in
      whole = chained)

(* ----------------------------- combine ------------------------------- *)

let replay entries =
  let mem = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match e with
      | Log_entry.Write { addr; value } -> Hashtbl.replace mem addr value
      | Log_entry.Alloc _ | Log_entry.Free _ | Log_entry.Tx_end _ | Log_entry.Cross _ -> ())
    entries;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) mem [] |> List.sort compare

let test_combine_last_writer_wins () =
  let group =
    [
      Log_entry.Write { addr = 0; value = 1L };
      Log_entry.Write { addr = 8; value = 2L };
      Log_entry.Tx_end { tid = 1 };
      Log_entry.Write { addr = 0; value = 3L };
      Log_entry.Tx_end { tid = 2 };
    ]
  in
  let combined, stats = Combine.combine group in
  check Alcotest.int "writes in" 3 stats.Combine.writes_in;
  check Alcotest.int "writes out" 2 stats.Combine.writes_out;
  check Alcotest.bool "replay equivalent" true (replay group = replay combined);
  check Alcotest.(list int) "all tids preserved" [ 1; 2 ] (Log_entry.tids combined)

let test_combine_preserves_alloc_order () =
  let group =
    [
      Log_entry.Alloc { off = 0; len = 8 };
      Log_entry.Free { off = 0; len = 8 };
      Log_entry.Alloc { off = 0; len = 8 };
      Log_entry.Tx_end { tid = 1 };
    ]
  in
  let combined, _ = Combine.combine group in
  let allocs =
    List.filter
      (function Log_entry.Alloc _ | Log_entry.Free _ -> true | _ -> false)
      combined
  in
  check Alcotest.int "all allocation events kept in order" 3 (List.length allocs);
  check Alcotest.bool "order preserved" true
    (allocs
    = [
        Log_entry.Alloc { off = 0; len = 8 };
        Log_entry.Free { off = 0; len = 8 };
        Log_entry.Alloc { off = 0; len = 8 };
      ])

let prop_combine_replay_equivalent =
  QCheck2.Test.make ~name:"combine: replay-equivalent to the original group" ~count:300
    (QCheck2.Gen.list_size (QCheck2.Gen.int_range 0 120) entry_gen)
    (fun group ->
      let combined, stats = Combine.combine group in
      replay group = replay combined
      && stats.Combine.writes_out <= stats.Combine.writes_in
      && Log_entry.tids combined = Log_entry.tids group)

(* Adversarial structured groups: every transaction draws its writes from a
   tiny address pool, so consecutive transactions overlap heavily (the case
   combination exists for); some transactions are empty (a bare end mark).
   Combination must stay replay-equivalent, keep every end mark, and emit at
   most one write per address. *)
let adversarial_group_gen =
  QCheck2.Gen.(
    let tx tid =
      let* writes =
        list_size (int_range 0 6)
          (map2
             (fun a v -> Log_entry.Write { addr = 8 * a; value = Int64.of_int v })
             (int_range 0 3) (int_range 0 1000))
      in
      return (writes @ [ Log_entry.Tx_end { tid } ])
    in
    let* n = int_range 1 12 in
    let rec build i acc =
      if i > n then return (List.concat (List.rev acc))
      else
        let* t = tx i in
        build (i + 1) (t :: acc)
    in
    build 1 [])

let prop_combine_adversarial_overlap =
  QCheck2.Test.make
    ~name:"combine: overlapping and empty transactions stay replay-equivalent"
    ~count:500 adversarial_group_gen
    (fun group ->
      let combined, stats = Combine.combine group in
      let write_addrs =
        List.filter_map
          (function Log_entry.Write { addr; _ } -> Some addr | _ -> None)
          combined
      in
      replay group = replay combined
      && Log_entry.tids combined = Log_entry.tids group
      && List.length write_addrs = List.length (List.sort_uniq compare write_addrs)
      && stats.Combine.writes_out = List.length write_addrs
      (* A combined group must also survive the wire format: recovery sees
         it only through encode/decode. *)
      && Log_entry.decode_list (Log_entry.encode_list combined) = combined)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_encode_roundtrip;
    Alcotest.test_case "entry encoding sizes" `Quick test_encode_sizes;
    Alcotest.test_case "decode rejects garbage" `Quick test_decode_rejects_garbage;
    Alcotest.test_case "tids extraction" `Quick test_tids_extraction;
    Alcotest.test_case "vlog basics" `Quick test_vlog_basic;
    Alcotest.test_case "vlog abort pops attempt" `Quick test_vlog_abort_pop;
    Alcotest.test_case "vlog wraps around" `Quick test_vlog_wraparound;
    Alcotest.test_case "vlog blocks producer when full" `Quick test_vlog_blocks_when_full;
    Alcotest.test_case "vlog unbounded growth" `Quick test_vlog_unbounded_grows;
    Alcotest.test_case "vlog clear" `Quick test_vlog_clear;
    Alcotest.test_case "crc32 check vector" `Quick test_crc_known_value;
    Alcotest.test_case "crc32 detects corruption" `Quick test_crc_detects_flip;
    QCheck_alcotest.to_alcotest prop_crc_chaining;
    Alcotest.test_case "combine: last writer wins" `Quick test_combine_last_writer_wins;
    Alcotest.test_case "combine preserves allocation order" `Quick test_combine_preserves_alloc_order;
    QCheck_alcotest.to_alcotest prop_combine_replay_equivalent;
    QCheck_alcotest.to_alcotest prop_combine_adversarial_overlap;
  ]

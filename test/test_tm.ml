(* Transactional-memory tests: lock table, TinySTM serializability and
   rollback, HTM conflicts/capacity/fallback. *)

module Lock_table = Dudetm_tm.Lock_table
module Tinystm = Dudetm_tm.Tinystm
module Tinystm_wb = Dudetm_tm.Tinystm_wb
module Htm = Dudetm_tm.Htm
module Tm_intf = Dudetm_tm.Tm_intf
module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Stats = Dudetm_sim.Stats

let check = Alcotest.check

(* ----------------------------- lock table ---------------------------- *)

let test_lock_table_acquire_release () =
  let t = Lock_table.create ~bits:4 () in
  let s = Lock_table.stripe_of_addr t 64 in
  (match Lock_table.read_word t s with
  | Lock_table.Version 0 -> ()
  | _ -> Alcotest.fail "fresh stripe should be Version 0");
  (match Lock_table.acquire t ~stripe:s ~uid:7 with
  | Some 0 -> ()
  | _ -> Alcotest.fail "acquire should return previous version 0");
  (match Lock_table.read_word t s with
  | Lock_table.Owned 7 -> ()
  | _ -> Alcotest.fail "stripe should be owned by 7");
  check Alcotest.bool "second acquire fails" true (Lock_table.acquire t ~stripe:s ~uid:8 = None);
  Lock_table.release_to t ~stripe:s ~version:42;
  match Lock_table.read_word t s with
  | Lock_table.Version 42 -> ()
  | _ -> Alcotest.fail "release installs the version"

let test_lock_table_stripe_mapping () =
  let t = Lock_table.create ~bits:8 () in
  check Alcotest.int "same word, same stripe" (Lock_table.stripe_of_addr t 128)
    (Lock_table.stripe_of_addr t 128);
  let distinct =
    List.sort_uniq compare (List.init 200 (fun i -> Lock_table.stripe_of_addr t (8 * i)))
  in
  check Alcotest.bool "addresses spread over stripes" true (List.length distinct > 100)

(* --------------------------- generic TM tests ------------------------ *)

let mem_tm (type t) (module Tm : Tm_intf.S with type t = t) ?costs () =
  let mem = Bytes.make 8192 '\000' in
  (Tm.create ?costs (Tm_intf.mem_store mem), mem)

module type TM = Tm_intf.S

let counter_increments (module Tm : TM) name =
  (* N threads increment a shared counter transactionally; the result must
     equal the number of committed increments (atomicity + isolation). *)
  let tm, mem = mem_tm (module Tm) () in
  let per = 200 in
  let threads = 4 in
  ignore
    (Sched.run (fun () ->
         for t = 0 to threads - 1 do
           ignore
             (Sched.spawn (Printf.sprintf "inc-%d" t) (fun () ->
                  for _ = 1 to per do
                    match
                      Tm.run tm (fun tx ->
                          let v = Tm.read tx 0 in
                          Tm.write tx 0 (Int64.add v 1L))
                    with
                    | Some _ -> ()
                    | None -> Alcotest.fail "unexpected user abort"
                  done))
         done));
  check Alcotest.int64 (name ^ ": counter equals total increments")
    (Int64.of_int (per * threads))
    (Bytes.get_int64_le mem 0);
  check Alcotest.int (name ^ ": contiguous tids") (per * threads) (Tm.last_tid tm)

let bank_transfers (module Tm : TM) name =
  (* Classic invariant: total balance conserved under concurrent random
     transfers, including user aborts on insufficient funds. *)
  let tm, mem = mem_tm (module Tm) () in
  let accounts = 32 in
  for i = 0 to accounts - 1 do
    Bytes.set_int64_le mem (8 * i) 100L
  done;
  ignore
    (Sched.run (fun () ->
         for t = 0 to 3 do
           ignore
             (Sched.spawn (Printf.sprintf "bank-%d" t) (fun () ->
                  let rng = Rng.create (50 + t) in
                  for _ = 1 to 150 do
                    let src = 8 * Rng.int rng accounts in
                    let dst = 8 * Rng.int rng accounts in
                    let amount = Int64.of_int (1 + Rng.int rng 50) in
                    ignore
                      (Tm.run tm (fun tx ->
                           let s = Tm.read tx src in
                           if s < amount then Tm.user_abort tx
                           else begin
                             Tm.write tx src (Int64.sub s amount);
                             let d = Tm.read tx dst in
                             Tm.write tx dst (Int64.add d amount)
                           end))
                  done))
         done));
  let total = ref 0L in
  for i = 0 to accounts - 1 do
    total := Int64.add !total (Bytes.get_int64_le mem (8 * i))
  done;
  check Alcotest.int64 (name ^ ": total balance conserved") (Int64.of_int (100 * accounts)) !total

let rollback_on_user_abort (module Tm : TM) name =
  let tm, mem = mem_tm (module Tm) () in
  Bytes.set_int64_le mem 0 11L;
  let r =
    Tm.run tm (fun tx ->
        Tm.write tx 0 99L;
        Tm.write tx 8 100L;
        Tm.user_abort tx)
  in
  check Alcotest.bool (name ^ ": abort returns None") true (r = None);
  check Alcotest.int64 (name ^ ": first write rolled back") 11L (Bytes.get_int64_le mem 0);
  check Alcotest.int64 (name ^ ": second write rolled back") 0L (Bytes.get_int64_le mem 8)

let read_only_tid_zero (module Tm : TM) name =
  let tm, _ = mem_tm (module Tm) () in
  (match Tm.run tm (fun tx -> Tm.read tx 0) with
  | Some (_, tid) -> check Alcotest.int (name ^ ": read-only tid is 0") 0 tid
  | None -> Alcotest.fail "read-only tx aborted");
  check Alcotest.int (name ^ ": clock unchanged") 0 (Tm.last_tid tm)

let on_retry_called (module Tm : TM) name =
  (* Force a conflict and observe the retry hook. *)
  let tm, _ = mem_tm (module Tm) () in
  let retries = ref 0 in
  let rounds = ref 0 in
  ignore
    (Sched.run (fun () ->
         for t = 0 to 1 do
           ignore
             (Sched.spawn (Printf.sprintf "c-%d" t) (fun () ->
                  for _ = 1 to 100 do
                    ignore
                      (Tm.run ~on_retry:(fun () -> incr retries) tm (fun tx ->
                           incr rounds;
                           let v = Tm.read tx 0 in
                           Sched.advance 40;
                           Tm.write tx 0 (Int64.add v 1L)))
                  done))
         done));
  check Alcotest.bool (name ^ ": conflicts happened") true (!retries > 0);
  check Alcotest.int (name ^ ": every retry re-ran the body") !rounds (200 + !retries)

let tm_tests name (module Tm : TM) =
  [
    Alcotest.test_case (name ^ ": concurrent counter") `Quick (fun () ->
        counter_increments (module Tm) name);
    Alcotest.test_case (name ^ ": bank transfers conserve balance") `Quick (fun () ->
        bank_transfers (module Tm) name);
    Alcotest.test_case (name ^ ": user abort rolls back") `Quick (fun () ->
        rollback_on_user_abort (module Tm) name);
    Alcotest.test_case (name ^ ": read-only commits without tid") `Quick (fun () ->
        read_only_tid_zero (module Tm) name);
    Alcotest.test_case (name ^ ": retry hook") `Quick (fun () -> on_retry_called (module Tm) name);
  ]

(* --------------------------- TinySTM specifics ----------------------- *)

let test_stm_write_through_visible_to_self () =
  let tm, _ = mem_tm (module Tinystm) () in
  match
    Tinystm.run tm (fun tx ->
        Tinystm.write tx 0 5L;
        Tinystm.read tx 0)
  with
  | Some (v, _) -> check Alcotest.int64 "read own write" 5L v
  | None -> Alcotest.fail "aborted"

let test_stm_snapshot_isolation () =
  (* A reader that started before a writer commits must either see the old
     consistent snapshot or abort-and-retry — never a mix. *)
  let tm, mem = mem_tm (module Tinystm) () in
  Bytes.set_int64_le mem 0 1L;
  Bytes.set_int64_le mem 512 1L;
  let observed = ref [] in
  ignore
    (Sched.run (fun () ->
         ignore
           (Sched.spawn "reader" (fun () ->
                for _ = 1 to 50 do
                  match
                    Tinystm.run tm (fun tx ->
                        let a = Tinystm.read tx 0 in
                        Sched.advance 100;
                        let b = Tinystm.read tx 512 in
                        (a, b))
                  with
                  | Some ((a, b), _) -> observed := (a, b) :: !observed
                  | None -> ()
                done));
         ignore
           (Sched.spawn "writer" (fun () ->
                for i = 2 to 40 do
                  ignore
                    (Tinystm.run tm (fun tx ->
                         Tinystm.write tx 0 (Int64.of_int i);
                         Sched.advance 60;
                         Tinystm.write tx 512 (Int64.of_int i)));
                  Sched.advance 120
                done))));
  List.iter
    (fun (a, b) ->
      if a <> b then
        Alcotest.failf "torn snapshot observed: %Ld vs %Ld" a b)
    !observed

let test_stm_abort_stats () =
  let tm, _ = mem_tm (module Tinystm) () in
  ignore
    (Sched.run (fun () ->
         for t = 0 to 3 do
           ignore
             (Sched.spawn (string_of_int t) (fun () ->
                  for _ = 1 to 50 do
                    ignore
                      (Tinystm.run tm (fun tx ->
                           let v = Tinystm.read tx 0 in
                           Sched.advance 30;
                           Tinystm.write tx 0 (Int64.add v 1L)))
                  done))
         done));
  let s = Tinystm.stats tm in
  check Alcotest.int "commits counted" 200 (Stats.get s "commits");
  check Alcotest.bool "aborts counted" true (Stats.get s "aborts" > 0);
  (* Every conflict rollback takes a randomized backoff pause; both the
     pause count and the simulated cycles spent must be visible. *)
  check Alcotest.int "backoffs = aborts" (Stats.get s "aborts") (Stats.get s "backoffs");
  check Alcotest.bool "backoff cycles accumulated" true
    (Stats.get s "backoff_cycles" >= 64 * Stats.get s "backoffs")

(* ----------------------------- HTM specifics ------------------------- *)

let test_wb_buffers_until_commit () =
  let mem = Bytes.make 1024 '\000' in
  let tm = Tinystm_wb.create (Tm_intf.mem_store mem) in
  let tx = Tinystm_wb.begin_tx tm in
  Tinystm_wb.write tx 0 7L;
  check Alcotest.int64 "store untouched before commit" 0L (Bytes.get_int64_le mem 0);
  check Alcotest.int64 "own write visible via redirection" 7L (Tinystm_wb.read tx 0);
  ignore (Tinystm_wb.commit tx);
  check Alcotest.int64 "applied at commit" 7L (Bytes.get_int64_le mem 0)

let test_htm_write_buffering () =
  (* HTM writes must be invisible until commit. *)
  let mem = Bytes.make 1024 '\000' in
  let tm = Htm.create (Tm_intf.mem_store mem) in
  let tx = Htm.begin_tx tm in
  Htm.write tx 0 7L;
  check Alcotest.int64 "store untouched before commit" 0L (Bytes.get_int64_le mem 0);
  check Alcotest.int64 "but visible to self" 7L (Htm.read tx 0);
  ignore (Htm.commit tx);
  check Alcotest.int64 "applied at commit" 7L (Bytes.get_int64_le mem 0)

let test_htm_capacity_fallback () =
  let mem = Bytes.make (1 lsl 20) '\000' in
  let tm = Htm.create_htm ~capacity_lines:8 (Tm_intf.mem_store mem) in
  ignore
    (Sched.run (fun () ->
         match
           Htm.run tm (fun tx ->
               (* Touch 32 distinct lines: beyond the 8-line capacity. *)
               for i = 0 to 31 do
                 Htm.write tx (i * 64) 1L
               done)
         with
         | Some _ -> ()
         | None -> Alcotest.fail "capacity fallback should still commit"));
  check Alcotest.bool "capacity abort recorded" true
    (Stats.get (Htm.stats tm) "capacity_aborts" > 0);
  check Alcotest.bool "fallback used" true (Stats.get (Htm.stats tm) "fallbacks" > 0);
  check Alcotest.int64 "fallback writes applied" 1L (Bytes.get_int64_le mem 0)

let test_htm_fallback_preserves_commit_order () =
  (* Capacity aborts past the retry budget push big transactions onto the
     global-lock fallback while small ones keep committing in hardware; the
     two paths must still agree on a single serial commit-ID order.  Every
     transaction bumps a shared counter, so its post-increment value is its
     serialization rank — which must match its commit ID exactly. *)
  let mem = Bytes.make (1 lsl 20) '\000' in
  let tm =
    Htm.create_htm ~capacity_lines:8 ~max_retries:2 (Tm_intf.mem_store mem)
  in
  let commits = ref [] in
  ignore
    (Sched.run (fun () ->
         for t = 0 to 2 do
           ignore
             (Sched.spawn (Printf.sprintf "mix-%d" t) (fun () ->
                  for i = 1 to 30 do
                    let big = i mod 3 = 0 in
                    match
                      Htm.run tm (fun tx ->
                          let s = Int64.to_int (Htm.read tx 0) + 1 in
                          Htm.write tx 0 (Int64.of_int s);
                          (* Touch 31 extra lines: past the 8-line write
                             capacity, so retries can't help. *)
                          if big then
                            for j = 1 to 31 do
                              Htm.write tx ((t * 16384) + (j * 64)) (Int64.of_int s)
                            done;
                          s)
                    with
                    | Some (s, tid) -> commits := (tid, s) :: !commits
                    | None -> Alcotest.fail "unexpected user abort"
                  done))
         done));
  let sorted = List.sort compare !commits in
  check Alcotest.int "every transaction committed" 90 (List.length sorted);
  List.iteri
    (fun idx (tid, s) ->
      if tid <> idx + 1 || s <> idx + 1 then
        Alcotest.failf "commit order diverges: tid %d serialized as rank %d" tid s)
    sorted;
  check Alcotest.int64 "counter equals total commits" 90L (Bytes.get_int64_le mem 0);
  check Alcotest.bool "capacity aborts past the retry budget" true
    (Stats.get (Htm.stats tm) "capacity_aborts" > 0);
  let fallbacks = Stats.get (Htm.stats tm) "fallbacks" in
  check Alcotest.bool "some commits took the lock fallback" true (fallbacks > 0);
  check Alcotest.bool "some commits stayed in hardware" true (fallbacks < 90)

let test_htm_conflict_dooms_reader () =
  let mem = Bytes.make 1024 '\000' in
  let tm = Htm.create (Tm_intf.mem_store mem) in
  ignore
    (Sched.run (fun () ->
         ignore
           (Sched.spawn "reader" (fun () ->
                ignore
                  (Htm.run tm (fun tx ->
                       let a = Htm.read tx 0 in
                       (* Yield so the writer can commit in between. *)
                       Sched.advance 500;
                       let b = Htm.read tx 0 in
                       check Alcotest.int64 "doomed reader never sees a mix" a b))));
         ignore
           (Sched.spawn "writer" (fun () ->
                Sched.advance 100;
                ignore (Htm.run tm (fun tx -> Htm.write tx 0 5L))))));
  check Alcotest.bool "reader aborted at least once" true
    (Stats.get (Htm.stats tm) "conflict_aborts" > 0)

let test_htm_tid_conflicts_ablation () =
  (* Stock hardware: commits of disjoint transactions still doom each
     other through the tx-ID counter. *)
  let run_with tid_conflicts =
    let mem = Bytes.make 65536 '\000' in
    let tm = Htm.create_htm ~tid_conflicts (Tm_intf.mem_store mem) in
    ignore
      (Sched.run (fun () ->
           for t = 0 to 3 do
             ignore
               (Sched.spawn (string_of_int t) (fun () ->
                    for i = 0 to 50 do
                      (* Every thread writes a distinct address: no real
                         data conflicts. *)
                      ignore
                        (Htm.run tm (fun tx ->
                             Htm.write tx ((t * 8192) + (i * 64)) 1L))
                    done))
           done));
    Stats.get (Htm.stats tm) "aborts"
  in
  check Alcotest.int "modified hardware: disjoint txs never abort" 0 (run_with false);
  check Alcotest.bool "stock hardware: counter conflicts abort" true (run_with true > 0)

let suite =
  [
    Alcotest.test_case "lock table acquire/release" `Quick test_lock_table_acquire_release;
    Alcotest.test_case "lock table stripe mapping" `Quick test_lock_table_stripe_mapping;
  ]
  @ tm_tests "tinystm" (module Tinystm)
  @ tm_tests "tinystm-wb" (module Tinystm_wb)
  @ tm_tests "htm" (module Htm)
  @ [
      Alcotest.test_case "stm: write-through visible to self" `Quick
        test_stm_write_through_visible_to_self;
      Alcotest.test_case "stm: snapshot isolation" `Quick test_stm_snapshot_isolation;
      Alcotest.test_case "stm: abort statistics" `Quick test_stm_abort_stats;
      Alcotest.test_case "tinystm-wb: buffers until commit" `Quick
        test_wb_buffers_until_commit;
      Alcotest.test_case "htm: write buffering" `Quick test_htm_write_buffering;
      Alcotest.test_case "htm: capacity abort falls back to lock" `Quick
        test_htm_capacity_fallback;
      Alcotest.test_case "htm: fallback preserves commit-ID order" `Quick
        test_htm_fallback_preserves_commit_order;
      Alcotest.test_case "htm: conflict dooms reader" `Quick test_htm_conflict_dooms_reader;
      Alcotest.test_case "htm: tx-ID counter conflict ablation" `Quick
        test_htm_tid_conflicts_ablation;
    ]

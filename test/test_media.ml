(* Cache-eviction adversary sweep (replayable [Nvm.crash ~evict_fraction])
   and the drain watchdog. *)

module Sched = Dudetm_sim.Sched
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module Check = Dudetm_check.Check
module D = Dudetm_core.Dudetm.Make (Dudetm_tm.Tinystm)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* S4: recovery must hold for every cache-eviction fraction — the crash
   model's choice of which dirty lines survive the cut is adversarial
   noise, not something correctness may depend on. *)
let evict_fractions = [ 0.0; 0.25; 0.5; 1.0 ]

let test_evict_sweep_replay () =
  let sut = Check.dude () in
  let wl = Check.counter ~threads:3 ~txs:2 in
  List.iter
    (fun fraction ->
      List.iter
        (fun crash ->
          match
            Check.replay ~evict:(fraction, 11) sut wl ~sched:Check.Default ~crash
          with
          | None -> ()
          | Some reason ->
            Alcotest.failf "evict %.2f crash %s: %s" fraction
              (match crash with None -> "quiescent" | Some k -> string_of_int k)
              reason)
        [ None; Some 1; Some 5; Some 9 ])
    evict_fractions

let test_evict_full_campaign () =
  (* One full (small-budget) campaign at a non-trivial fraction: every
     crash site, scheduled and randomized orders, survivors recorded. *)
  let budget : Check.budget =
    {
      Check.crash_sites = 8;
      sched_seeds = 2;
      crash_sites_per_seed = 4;
      exhaustive_runs = 0;
      exhaustive_depth = 0;
    }
  in
  let sut = Check.dude () in
  let wls = Check.workloads_for sut ~threads:3 ~txs:2 in
  match Check.check_system ~budget ~evict:(0.5, 7) sut wls with
  | Check.Pass { runs; _ } -> Alcotest.(check bool) "ran" true (runs > 0)
  | Check.Fail f ->
    Alcotest.failf "evict campaign failed: %s\n  %s" f.Check.f_reason
      (Check.replay_line f)

let test_evict_failure_carries_survivors () =
  (* A mutant that the eviction adversary catches must report the evict
     knob and the surviving lines in its replay record. *)
  let budget : Check.budget =
    {
      Check.crash_sites = 25;
      sched_seeds = 2;
      crash_sites_per_seed = 6;
      exhaustive_runs = 0;
      exhaustive_depth = 0;
    }
  in
  (* Note the fraction: at 1.0 every dirty line is written back at the
     cut, which masks a missing persist fence; 0.5 loses some lines. *)
  let sut = Check.dude ~fault:Config.Early_durable_publish () in
  let wls = Check.workloads_for sut ~threads:3 ~txs:2 in
  match Check.check_system ~budget ~evict:(0.5, 3) sut wls with
  | Check.Pass _ -> Alcotest.fail "early-durable mutant escaped the eviction sweep"
  | Check.Fail f ->
    (match f.Check.f_evict with
    | Some (fr, seed) ->
      Alcotest.(check (float 0.0)) "fraction recorded" 0.5 fr;
      Alcotest.(check int) "seed recorded" 3 seed
    | None -> Alcotest.fail "failure record lost the evict knob");
    Alcotest.(check bool) "replay line names the adversary" true
      (contains (Check.replay_line f) "--evict 0.5")

(* S1: the drain watchdog.  With a cycle budget far below the pipeline's
   persist latency, committed-but-unretired work must surface as a
   [Drain_stalled] diagnostic instead of an unbounded wait. *)
let test_drain_watchdog_raises () =
  let cfg =
    {
      Config.default with
      Config.heap_size = 1 lsl 16;
      root_size = 4096;
      nthreads = 1;
      vlog_capacity = 256;
      plog_size = 1 lsl 13;
      meta_size = 8192;
      seed = 7;
      drain_budget = 1;
    }
  in
  let t = D.create cfg in
  let stalled = ref None in
  ignore
    (Sched.run (fun () ->
         D.start t;
         for _ = 1 to 8 do
           ignore
             (D.atomically t ~thread:0 (fun tx ->
                  D.write tx (D.root_base t) (Int64.add (D.read tx (D.root_base t)) 1L)))
         done;
         match D.drain t with
         | () -> ()
         | exception Dudetm_core.Dudetm.Drain_stalled msg -> stalled := Some msg));
  match !stalled with
  | None -> Alcotest.fail "drain returned despite a 1-cycle budget"
  | Some msg ->
    let has needle = contains msg needle in
    Alcotest.(check bool) "diagnostic names the budget" true (has "after 1 cycles");
    Alcotest.(check bool) "diagnostic reports pipeline stages" true
      (has "durable=" && has "applied=" && has "vlog_backlog=")

let test_drain_watchdog_quiet_on_healthy_engine () =
  (* The default budget never fires on a healthy pipeline. *)
  let cfg =
    {
      Config.default with
      Config.heap_size = 1 lsl 16;
      root_size = 4096;
      nthreads = 1;
      vlog_capacity = 256;
      plog_size = 1 lsl 13;
      meta_size = 8192;
      seed = 7;
    }
  in
  let t = D.create cfg in
  ignore
    (Sched.run (fun () ->
         D.start t;
         for _ = 1 to 8 do
           ignore
             (D.atomically t ~thread:0 (fun tx ->
                  D.write tx (D.root_base t) (Int64.add (D.read tx (D.root_base t)) 1L)))
         done;
         D.drain t;
         D.stop t));
  Alcotest.(check int64) "all transactions retired" 8L
    (Nvm.persisted_u64 (D.nvm t) 0)

let suite =
  [
    Alcotest.test_case "evict sweep 0/25/50/100% replays clean" `Quick
      test_evict_sweep_replay;
    Alcotest.test_case "evict full campaign at 50%" `Quick test_evict_full_campaign;
    Alcotest.test_case "evict failure records knob and survivors" `Quick
      test_evict_failure_carries_survivors;
    Alcotest.test_case "drain watchdog raises on stalled pipeline" `Quick
      test_drain_watchdog_raises;
    Alcotest.test_case "drain watchdog quiet on healthy engine" `Quick
      test_drain_watchdog_quiet_on_healthy_engine;
  ]

(* lib/replica tests: wire-frame codec (roundtrip, CRC rejection of any
   single-bit flip, truncation), link fault injection (deterministic
   seeded drop/duplicate/reorder/delay), quorum math, K=1 degeneration to
   the unreplicated engine, end-to-end replication over hostile links
   (dedup by batch sequence, CRC rejection, in-order apply, retransmit
   with capped backoff), promotion truncation to the quorum prefix,
   bounded ack waits with explicit degraded mode and the [Replica_lag]
   diagnostic, replica trace spans / per-link byte accounting, and the
   failover campaign (clean pass + seeded Skip_quorum_gate mutant
   caught). *)

module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module Wire = Dudetm_log.Wire
module Trace = Dudetm_trace.Trace
module Check = Dudetm_check.Check
module Link = Dudetm_replica.Link
module Rep = Dudetm_replica.Replica.Make (Dudetm_tm.Tinystm)
module E = Rep.Engine

let check = Alcotest.check

(* Small cluster layout, same shape as the checker's engine configs. *)
let cfg ?(nthreads = 2) ?(ack_timeout = 2_000_000) ?(fault = Config.No_fault) () =
  {
    Config.default with
    Config.heap_size = 1 lsl 16;
    root_size = 4096;
    nthreads;
    vlog_capacity = 256;
    plog_size = 1 lsl 14;
    meta_size = 8192;
    group_size = 4;
    combine = true;
    compress = true;
    persist_threads = 1;
    reproduce_batch = 4;
    checkpoint_records = 2;
    seed = 7;
    fault;
    ack_timeout;
  }

(* Short links so retransmit/backoff cycles stay small in tests. *)
let fast_link = { Link.default_config with Link.latency = 2_000 }

let rcfg ?(link = fast_link) k = { (Rep.default_config ~nreplicas:k ()) with Rep.link }

(* Counter body: transaction i writes the root to i and stamps slot
   (i mod 4), so the durable state is a function of the commit count. *)
let slot i = 8 + (8 * (i mod 4))

let body tx =
  let c1 = 1 + Int64.to_int (E.read tx 0) in
  E.write tx (slot c1) (Int64.of_int c1);
  E.write tx 0 (Int64.of_int c1)

let spawn_workers prim ~nthreads ~txs ~committed ~done_workers =
  for th = 0 to nthreads - 1 do
    ignore
      (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
           for _ = 1 to txs do
             match E.atomically prim ~thread:th body with
             | Some (_, tid) when tid > 0 -> committed := max !committed tid
             | _ -> ()
           done;
           incr done_workers))
  done

(* ------------------------------- wire ---------------------------------- *)

let test_wire_roundtrip () =
  let payload = Bytes.of_string "redo-record-payload-bytes" in
  (match Wire.decode (Wire.encode (Wire.Batch { seq = 5; lo = 3; hi = 9; acked = 2; payload })) with
  | Some (Wire.Batch f) ->
    check Alcotest.int "seq" 5 f.seq;
    check Alcotest.int "lo" 3 f.lo;
    check Alcotest.int "hi" 9 f.hi;
    check Alcotest.int "acked" 2 f.acked;
    check Alcotest.string "payload" (Bytes.to_string payload) (Bytes.to_string f.payload)
  | _ -> Alcotest.fail "batch frame did not survive the roundtrip");
  (match Wire.decode (Wire.encode (Wire.Ack { seq = 41; durable = 40 })) with
  | Some (Wire.Ack a) ->
    check Alcotest.int "ack seq" 41 a.seq;
    check Alcotest.int "ack durable" 40 a.durable
  | _ -> Alcotest.fail "ack frame did not survive the roundtrip");
  match Wire.decode (Wire.encode (Wire.Watermark { acked = 17 })) with
  | Some (Wire.Watermark w) -> check Alcotest.int "watermark" 17 w.acked
  | _ -> Alcotest.fail "watermark frame did not survive the roundtrip"

let test_wire_crc_rejects_any_flip () =
  let b = Wire.encode (Wire.Batch { seq = 1; lo = 1; hi = 4; acked = 0; payload = Bytes.of_string "payload" }) in
  for i = 0 to Bytes.length b - 1 do
    for bit = 0 to 7 do
      let c = Bytes.copy b in
      Bytes.set c i (Char.chr (Char.code (Bytes.get c i) lxor (1 lsl bit)));
      if Wire.decode c <> None then
        Alcotest.failf "flip of byte %d bit %d went undetected" i bit
    done
  done;
  check Alcotest.bool "truncated frame rejected" true
    (Wire.decode (Bytes.sub b 0 (Bytes.length b - 1)) = None);
  check Alcotest.bool "extended frame rejected" true
    (Wire.decode (Bytes.cat b (Bytes.make 1 '\000')) = None);
  check Alcotest.bool "tiny frame rejected" true (Wire.decode (Bytes.make 3 'x') = None)

(* ------------------------------- link ----------------------------------- *)

let link_fault_run () =
  let faults =
    { Link.drop = 0.2; duplicate = 0.2; reorder = 0.3; delay = 0.1; delay_cycles = 5_000;
      corrupt = 0.0 }
  in
  let l =
    Link.create ~label:"test-link"
      { Link.latency = 1_000; bandwidth_gbps = 10.0; faults; seed = 42 }
  in
  let received = ref [] in
  ignore
    (Sched.run (fun () ->
         for i = 1 to 200 do
           Link.send l (Bytes.make 32 (Char.chr (i land 0xff)))
         done;
         while Link.in_flight l > 0 do
           match Link.recv l with
           | Some b -> received := Bytes.get b 0 :: !received
           | None -> Sched.advance 500
         done));
  let st = Link.stats l in
  let g k = Stats.get st k in
  (List.rev !received, g "frames_sent", g "frames_dropped", g "frames_duplicated",
   g "frames_delivered", g "frames_reordered", g "frames_delayed")

let test_link_faults_deterministic () =
  let recv1, sent, dropped, duplicated, delivered, reordered, delayed = link_fault_run () in
  check Alcotest.int "every send counted" 200 sent;
  check Alcotest.bool "some frames dropped" true (dropped > 0);
  check Alcotest.bool "some frames duplicated" true (duplicated > 0);
  check Alcotest.bool "some frames reordered" true (reordered > 0);
  check Alcotest.bool "some frames delayed" true (delayed > 0);
  check Alcotest.int "delivered = sent - dropped + duplicated"
    (sent - dropped + duplicated) delivered;
  (* Same seed, same schedule: the faulted stream replays exactly. *)
  let recv2, _, _, _, _, _, _ = link_fault_run () in
  check Alcotest.bool "fault stream is deterministic" true (recv1 = recv2)

let test_link_partition_drops () =
  let l = Link.create ~label:"p" fast_link in
  ignore
    (Sched.run (fun () ->
         Link.set_partitioned l true;
         Link.send l (Bytes.make 8 'x');
         check Alcotest.int "partitioned send never queues" 0 (Link.in_flight l);
         Link.set_partitioned l false;
         Link.send l (Bytes.make 8 'y');
         check Alcotest.int "healed link queues" 1 (Link.in_flight l)));
  check Alcotest.int "partition drop counted" 1
    (Stats.get (Link.stats l) "frames_dropped_partition")

(* ------------------------------ quorum math ----------------------------- *)

let test_quorum_math () =
  List.iter
    (fun (k, q) -> check Alcotest.int (Printf.sprintf "quorum for K=%d" k) q (Rep.quorum_needed ~nreplicas:k))
    [ (1, 1); (2, 2); (3, 2); (4, 3); (5, 3) ]

let test_create_validates () =
  check Alcotest.bool "combine required" true
    (try
       ignore (Rep.create { (cfg ()) with Config.combine = false; compress = false });
       false
     with Invalid_argument _ -> true);
  check Alcotest.bool "ack_timeout validated" true
    (try
       ignore (Config.validate { (cfg ()) with Config.ack_timeout = 0 });
       false
     with Config.Invalid_config _ -> true)

(* --------------------- K=1 degenerates to PR 6 -------------------------- *)

let test_k1_matches_unreplicated () =
  let c1 = cfg ~nthreads:1 () in
  let txs = 12 in
  (* Unreplicated control. *)
  let plain = E.create c1 in
  ignore
    (Sched.run (fun () ->
         E.start plain;
         let committed = ref 0 and done_workers = ref 0 in
         spawn_workers plain ~nthreads:1 ~txs ~committed ~done_workers;
         Sched.wait_until ~label:"plain done" (fun () -> !done_workers = 1);
         E.drain plain;
         E.stop plain));
  (* K=1 cluster: every ack must be primary-local durability, immediately. *)
  let c = Rep.create ~rcfg:(rcfg 1) c1 in
  let prim = Rep.primary c in
  ignore
    (Sched.run (fun () ->
         Rep.start c;
         for i = 1 to txs do
           match E.atomically prim ~thread:0 body with
           | Some (_, tid) when tid > 0 ->
             (match Rep.wait_acked c tid with
             | Rep.Quorum -> ()
             | Rep.Degraded_quorum d -> Alcotest.failf "K=1 ack degraded at tx %d: %s" i d);
             check Alcotest.int "K=1 watermark is the primary durable id"
               (E.durable_id prim) (Rep.acked c)
           | _ -> ()
         done;
         (match Rep.drain c with
         | Rep.Quorum -> ()
         | Rep.Degraded_quorum d -> Alcotest.failf "K=1 drain degraded: %s" d);
         Rep.sync_followers c;
         Rep.stop c));
  check Alcotest.int "same durable id as the unreplicated engine"
    (E.durable_id plain) (E.durable_id prim);
  for a = 0 to 4 do
    check Alcotest.int
      (Printf.sprintf "heap word %d matches the unreplicated engine" a)
      (Int64.to_int (E.heap_read_u64 plain (8 * a)))
      (Int64.to_int (E.heap_read_u64 prim (8 * a)))
  done;
  (* The follower replayed the same prefix. *)
  let r0 = Rep.replica c 0 in
  check Alcotest.int "follower sealed the full prefix" (E.durable_id prim) (E.durable_id r0);
  check Alcotest.int "follower replayed the full prefix" (E.durable_id prim) (E.applied_id r0)

(* ------------------- hostile links, end to end -------------------------- *)

let test_faulty_links_end_to_end () =
  let faults =
    { Link.drop = 0.15; duplicate = 0.15; reorder = 0.15; delay = 0.05;
      delay_cycles = 10_000; corrupt = 0.1 }
  in
  let link = { fast_link with Link.faults } in
  let c = Rep.create ~rcfg:(rcfg ~link 3) (cfg ()) in
  let prim = Rep.primary c in
  let committed = ref 0 in
  ignore
    (Sched.run (fun () ->
         Rep.start c;
         let done_workers = ref 0 in
         spawn_workers prim ~nthreads:2 ~txs:10 ~committed ~done_workers;
         Sched.wait_until ~label:"workers done" (fun () -> !done_workers = 2);
         (match Rep.drain c with
         | Rep.Quorum -> ()
         | Rep.Degraded_quorum d -> Alcotest.failf "retransmit failed to reach quorum: %s" d);
         Rep.sync_followers c;
         Rep.stop c));
  check Alcotest.int "quorum acked everything committed" !committed (Rep.acked c);
  for i = 0 to 2 do
    let r = Rep.replica c i in
    check Alcotest.int
      (Printf.sprintf "replica %d sealed the full prefix" i)
      !committed (E.durable_id r);
    check Alcotest.int
      (Printf.sprintf "replica %d replayed the full prefix" i)
      !committed (E.applied_id r)
  done;
  (* The replayed state lives in each replica's persistent heap; promotion
     recovers it and must reproduce the full committed prefix. *)
  let eng, prom = Rep.promote c in
  check Alcotest.int "promotion recovers the full prefix" !committed
    prom.Rep.quorum_prefix;
  check Alcotest.int "promoted root matches the commit count" !committed
    (Int64.to_int (E.heap_read_u64 eng 0));
  let st = Rep.stats c in
  check Alcotest.bool "duplicates were deduped by batch seq" true (Stats.get st "dup_frames" > 0);
  check Alcotest.bool "corrupt frames were CRC-rejected" true (Stats.get st "crc_rejected" > 0);
  check Alcotest.bool "lost frames were retransmitted" true (Stats.get st "retransmits" > 0);
  check Alcotest.bool "retransmit rounds backed off" true
    (Stats.get st "retransmit_rounds" > 0 && Stats.get st "backoff_cycles" > 0);
  let corrupted =
    Array.fold_left
      (fun acc (down, up) ->
        acc + Stats.get down "frames_corrupted" + Stats.get up "frames_corrupted")
      0 (Rep.link_stats c)
  in
  check Alcotest.bool "links injected corruption" true (corrupted > 0)

(* -------------------- promotion truncates to quorum ---------------------- *)

exception Primary_died

(* At K=5 a transaction is quorum-acked once durable on the primary plus
   two replicas, so promotion's safe cut is the second-largest replica
   prefix — a lone replica that ran ahead of the quorum gets its
   never-acked tail discarded.  (At K=3 the cut is the maximum: an acked
   transaction is only guaranteed on one replica, so nothing above the
   longest prefix can be promised and nothing below it may be dropped.) *)
let test_promotion_truncates_to_quorum_prefix () =
  let c = Rep.create ~rcfg:(rcfg 5) (cfg ~nthreads:1 ()) in
  let prim = Rep.primary c in
  let committed = ref 0 in
  let commit_one () =
    match E.atomically prim ~thread:0 body with
    | Some (_, tid) when tid > 0 -> committed := max !committed tid
    | _ -> ()
  in
  (try
     ignore
       (Sched.run (fun () ->
            Rep.start c;
            (* Phase 1: a quorum-acked prefix on every replica. *)
            for _ = 1 to 8 do
              commit_one ()
            done;
            (match Rep.drain c with
            | Rep.Quorum -> ()
            | Rep.Degraded_quorum d -> Alcotest.failf "healthy drain degraded: %s" d);
            (* Phase 2: cut off every replica but 0.  The quorum watermark
               freezes; only replica 0 keeps receiving the tail. *)
            for i = 1 to 4 do
              Rep.set_partitioned c i true
            done;
            for _ = 1 to 24 do
              commit_one ()
            done;
            let guard = ref 0 in
            while E.durable_id (Rep.replica c 0) < !committed && !guard < 1_000 do
              incr guard;
              Sched.advance 5_000
            done;
            check Alcotest.int "replica 0 sealed the whole tail" !committed
              (E.durable_id (Rep.replica c 0));
            raise Primary_died))
   with Primary_died -> ());
  let acked = Rep.acked c in
  check Alcotest.bool "watermark froze below the committed tail" true
    (acked < !committed);
  let _eng, prom = Rep.promote c in
  let durable = prom.Rep.report.Dudetm_core.Dudetm.durable in
  check Alcotest.bool "replica 0 ran ahead of the quorum" true
    (prom.Rep.candidates.(0) > prom.Rep.quorum_prefix);
  check Alcotest.int "winner is the longest prefix" 0 prom.Rep.promoted;
  check Alcotest.bool "the never-acked tail was discarded" true (prom.Rep.truncated_txs > 0);
  check Alcotest.int "promotion stops at the quorum prefix" prom.Rep.quorum_prefix durable;
  check Alcotest.bool "no quorum-acked transaction lost" true (durable >= acked);
  check Alcotest.int "promoted image matches its durable id" durable
    (Int64.to_int (E.heap_read_u64 _eng 0))

(* ----------------- bounded waits and explicit degradation ---------------- *)

let test_degraded_mode_and_heal () =
  let ack_timeout = 100_000 in
  let c = Rep.create ~rcfg:(rcfg 3) (cfg ~ack_timeout ()) in
  let prim = Rep.primary c in
  ignore
    (Sched.run (fun () ->
         Rep.start c;
         for i = 0 to 2 do
           Rep.set_partitioned c i true
         done;
         let tid =
           match E.atomically prim ~thread:0 body with
           | Some (_, tid) -> tid
           | None -> Alcotest.fail "commit failed"
         in
         let t0 = Sched.now () in
         (match Rep.wait_acked c tid with
         | Rep.Quorum -> Alcotest.fail "quorum reached through a full partition"
         | Rep.Degraded_quorum msg ->
           check Alcotest.bool "degradation names the quorum" true
             (String.length msg > 0));
         let waited = Sched.now () - t0 in
         check Alcotest.bool
           (Printf.sprintf "wait bounded by ack_timeout (waited %d)" waited)
           true
           (waited <= ack_timeout + 50_000);
         (match Rep.health c with
         | Rep.Degraded _ -> ()
         | Rep.Healthy -> Alcotest.fail "degradation must be explicit, not silent");
         let diag = Rep.diagnostic c in
         let has needle =
           let n = String.length needle and l = String.length diag in
           let rec go i = i + n <= l && (String.sub diag i n = needle || go (i + 1)) in
           go 0
         in
         check Alcotest.bool "diagnostic reports per-replica lag" true (has "lag=");
         check Alcotest.bool "diagnostic reports retransmit counters" true
           (has "retransmits=");
         (try
            ignore (Rep.drain ~require_quorum:true c);
            Alcotest.fail "drain ~require_quorum through a full partition"
          with Rep.Replica_lag _ -> ());
         check Alcotest.bool "degraded acks counted" true
           (Stats.get (Rep.stats c) "degraded_acks" >= 1);
         (* Heal: retransmission catches the replicas up and the cluster
            returns to quorum service. *)
         for i = 0 to 2 do
           Rep.set_partitioned c i false
         done;
         let guard = ref 0 in
         while Rep.acked c < tid && !guard < 1_000 do
           incr guard;
           Sched.advance 5_000
         done;
         check Alcotest.bool "healed cluster reaches quorum" true (Rep.acked c >= tid);
         (match Rep.wait_acked c tid with
         | Rep.Quorum -> ()
         | Rep.Degraded_quorum d -> Alcotest.failf "still degraded after heal: %s" d);
         (match Rep.health c with
         | Rep.Healthy -> ()
         | Rep.Degraded d -> Alcotest.failf "health not restored after heal: %s" d);
         Rep.stop c))

(* ------------------- bounded retransmit retention ------------------------ *)

(* A partitioned follower must not pin unbounded primary DRAM: with a tiny
   retention cap, the laggard gets cut off (sticky, reported through
   [health]) while the live replicas keep acking the quorum. *)
let test_retention_cap_cuts_off_laggard () =
  let cap = 8 in
  let rc = { (rcfg 3) with Rep.max_retained = cap } in
  let c = Rep.create ~rcfg:rc (cfg ~nthreads:1 ()) in
  let prim = Rep.primary c in
  let committed = ref 0 in
  ignore
    (Sched.run (fun () ->
         Rep.start c;
         Rep.set_partitioned c 2 true;
         for i = 1 to 24 do
           match E.atomically prim ~thread:0 body with
           | Some (_, tid) when tid > 0 -> (
             committed := max !committed tid;
             match Rep.wait_acked c tid with
             | Rep.Quorum -> ()
             | Rep.Degraded_quorum d ->
               Alcotest.failf "healthy quorum lost behind the laggard at tx %d: %s" i d)
           | _ -> ()
         done;
         (match Rep.drain c with
         | Rep.Quorum -> ()
         | Rep.Degraded_quorum d -> Alcotest.failf "drain lost quorum: %s" d);
         check Alcotest.bool
           (Printf.sprintf "retained queue bounded by the cap (%d)" (Rep.retained c))
           true
           (Rep.retained c <= cap);
         check Alcotest.bool "the partitioned laggard is cut off" true
           (Rep.cut_off c).(2);
         check Alcotest.bool "live replicas stay in service" false
           ((Rep.cut_off c).(0) || (Rep.cut_off c).(1));
         (match Rep.health c with
         | Rep.Degraded d ->
           let has needle =
             let n = String.length needle and l = String.length d in
             let rec go i = i + n <= l && (String.sub d i n = needle || go (i + 1)) in
             go 0
           in
           check Alcotest.bool "alarm names the cut-off replica" true (has "cut off");
           check Alcotest.bool "alarm names the retention bound" true (has "retention")
         | Rep.Healthy -> Alcotest.fail "a tripped retention cap must degrade health");
         (* Sticky: healing the link cannot un-cut the replica — its
            missing batches are gone; only a resync could revive it. *)
         Rep.set_partitioned c 2 false;
         Sched.advance 200_000;
         check Alcotest.bool "cut-off survives a link heal" true (Rep.cut_off c).(2);
         (match Rep.health c with
         | Rep.Degraded _ -> ()
         | Rep.Healthy -> Alcotest.fail "the lag alarm must stay sticky");
         Rep.stop c));
  check Alcotest.int "quorum acked everything committed" !committed (Rep.acked c);
  let st = Rep.stats c in
  check Alcotest.bool "retention drops counted" true (Stats.get st "retention_drops" > 0);
  check Alcotest.int "exactly one replica cut off" 1 (Stats.get st "replicas_cut_off")

(* ----------------------------- tracing ----------------------------------- *)

let with_tracer ?capacity f =
  Trace.enable ?capacity ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    f

let test_trace_spans_and_link_accounting () =
  with_tracer @@ fun () ->
  let c = Rep.create ~rcfg:(rcfg 1) (cfg ~nthreads:1 ()) in
  let prim = Rep.primary c in
  let committed = ref 0 in
  ignore
    (Sched.run (fun () ->
         Rep.start c;
         let done_workers = ref 0 in
         spawn_workers prim ~nthreads:1 ~txs:8 ~committed ~done_workers;
         Sched.wait_until ~label:"worker done" (fun () -> !done_workers = 1);
         ignore (Rep.drain c);
         Rep.sync_followers c;
         Rep.stop c));
  ignore (Rep.promote c);
  let phase name =
    List.find_opt
      (fun p -> p.Trace.ph_cat = "replica" && p.Trace.ph_name = name)
      (Trace.phases ())
  in
  (match phase "ship" with
  | Some p -> check Alcotest.bool "ship spans recorded" true (p.Trace.ph_count > 0)
  | None -> Alcotest.fail "no replica.ship spans");
  (match phase "apply" with
  | Some p -> check Alcotest.bool "apply spans recorded" true (p.Trace.ph_count > 0)
  | None -> Alcotest.fail "no replica.apply spans");
  (match phase "promote" with
  | Some p -> check Alcotest.int "one promotion span" 1 p.Trace.ph_count
  | None -> Alcotest.fail "no replica.promote span");
  (match
     List.find_opt (fun a -> a.Trace.lk_link = "ship:replica0") (Trace.link_accts ())
   with
  | Some a ->
    check Alcotest.bool "ship link accounted bytes" true (a.Trace.lk_bytes > 0);
    check Alcotest.bool "ship link accounted frames" true (a.Trace.lk_frames > 0)
  | None -> Alcotest.fail "no per-link byte accounting for ship:replica0");
  let summary = Trace.summary_json () in
  let has needle =
    let n = String.length needle and l = String.length summary in
    let rec go i = i + n <= l && (String.sub summary i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "summary exports the links section" true (has "\"links\"")

let test_link_transfer_zero_alloc_when_disabled () =
  assert (not (Trace.enabled ()));
  let before = Gc.minor_words () in
  for i = 1 to 1_000 do
    Trace.link_transfer ~link:"ship:replica0" ~bytes:i ~cycles:i
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 64.0 then
    Alcotest.failf "disabled link_transfer allocated %.0f minor words" delta

(* ----------------------------- campaign ---------------------------------- *)

let test_campaign_clean () =
  match Check.check_replica ~txs:6 () with
  | Check.Replica_pass { runs; boundaries } ->
    check Alcotest.bool "swept multiple runs" true (runs > 10 && boundaries > 0)
  | Check.Replica_fail rf ->
    Alcotest.failf "campaign failed: %s (replay: %s)" rf.Check.rf_reason
      (Check.replica_replay_line rf)

let test_campaign_catches_skip_quorum_gate () =
  match Check.check_replica ~fault:Config.Skip_quorum_gate ~txs:6 () with
  | Check.Replica_pass _ ->
    Alcotest.fail "campaign missed the Skip_quorum_gate mutant"
  | Check.Replica_fail rf ->
    check Alcotest.bool "failure is attributed to a primary kill" true
      (rf.Check.rf_crash <> None);
    let line = Check.replica_replay_line rf in
    let has needle =
      let n = String.length needle and l = String.length line in
      let rec go i = i + n <= l && (String.sub line i n = needle || go (i + 1)) in
      go 0
    in
    check Alcotest.bool "replay line pins the mutant" true
      (has "--mutate skip-quorum-gate");
    check Alcotest.bool "replay line pins the crash site" true (has "--crash-at")

let suite =
  [
    Alcotest.test_case "replica: wire frames roundtrip" `Quick test_wire_roundtrip;
    Alcotest.test_case "replica: CRC rejects any single-bit flip" `Quick
      test_wire_crc_rejects_any_flip;
    Alcotest.test_case "replica: link faults are seeded and deterministic" `Quick
      test_link_faults_deterministic;
    Alcotest.test_case "replica: partitioned link drops at the sender" `Quick
      test_link_partition_drops;
    Alcotest.test_case "replica: quorum math" `Quick test_quorum_math;
    Alcotest.test_case "replica: config validation" `Quick test_create_validates;
    Alcotest.test_case "replica: K=1 degenerates to the unreplicated engine" `Quick
      test_k1_matches_unreplicated;
    Alcotest.test_case "replica: hostile links — dedup, CRC, retransmit, converge" `Quick
      test_faulty_links_end_to_end;
    Alcotest.test_case "replica: promotion truncates to the quorum prefix" `Quick
      test_promotion_truncates_to_quorum_prefix;
    Alcotest.test_case "replica: bounded waits, explicit degradation, heal" `Quick
      test_degraded_mode_and_heal;
    Alcotest.test_case "replica: retention cap cuts off the laggard" `Quick
      test_retention_cap_cuts_off_laggard;
    Alcotest.test_case "replica: trace spans and per-link accounting" `Quick
      test_trace_spans_and_link_accounting;
    Alcotest.test_case "replica: disabled link_transfer allocates nothing" `Quick
      test_link_transfer_zero_alloc_when_disabled;
    Alcotest.test_case "replica: failover campaign passes" `Slow test_campaign_clean;
    Alcotest.test_case "replica: campaign catches Skip_quorum_gate" `Quick
      test_campaign_catches_skip_quorum_gate;
  ]

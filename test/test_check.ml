(* Tier-1 smoke for the systematic crash/schedule checker (lib/check), plus
   the mutation self-test: the checker must stay quiet on the real engine and
   both baselines, and must catch both deliberately seeded ordering bugs. *)

module Check = Dudetm_check.Check
module Config = Dudetm_core.Config

(* A small explicit budget so runtest stays fast; the env-sensitive
   [tier1_budget] is exercised separately below. *)
let smoke_budget : Check.budget =
  {
    crash_sites = 25;
    sched_seeds = 2;
    crash_sites_per_seed = 6;
    exhaustive_runs = 12;
    exhaustive_depth = 5;
  }

let expect_pass name sut =
  let wls = Check.workloads_for sut ~threads:3 ~txs:2 in
  match Check.check_system ~budget:smoke_budget sut wls with
  | Check.Pass { runs; sites } ->
    Alcotest.(check bool)
      (Printf.sprintf "%s: explored some runs" name)
      true
      (runs > 0 && sites > 0)
  | Check.Fail f ->
    Alcotest.failf "%s: checker found a violation: %s\n  replay: %s" name
      f.Check.f_reason (Check.replay_line f)

let test_clean_dude () = expect_pass "dude" (Check.dude ())

let test_clean_combine () = expect_pass "dude-combine" (Check.dude_combine ())

let test_clean_htm () = expect_pass "dude-htm" (Check.dude_htm ())

let test_clean_mnemosyne () = expect_pass "mnemosyne" (Check.mnemosyne ())

let test_clean_nvml () = expect_pass "nvml" (Check.nvml ())

(* Mutation self-test: a checker that cannot catch a seeded ordering bug is
   not checking anything.  Each fault must (1) produce a Fail, and (2) shrink
   to a triple that deterministically fails again when replayed. *)
let expect_caught name fault =
  let sut = Check.dude ~fault () in
  let wls = Check.workloads_for sut ~threads:3 ~txs:2 in
  match Check.check_system ~budget:smoke_budget sut wls with
  | Check.Pass _ -> Alcotest.failf "%s: seeded bug escaped the checker" name
  | Check.Fail f ->
    let line = Check.replay_line f in
    Alcotest.(check bool)
      (Printf.sprintf "%s: replay line names the mutant" name)
      true
      (String.length line > 0);
    (* Re-run the shrunk triple: it must fail again, deterministically. *)
    let wl =
      Check.workload_of_name ~threads:f.Check.f_threads ~txs:f.Check.f_txs
        f.Check.f_workload
    in
    (match Check.replay sut wl ~sched:f.Check.f_sched ~crash:f.Check.f_crash with
    | Some _reason -> ()
    | None ->
      Alcotest.failf "%s: shrunk triple did not reproduce (%s)" name line);
    (* And twice more: same triple, same verdict (determinism). *)
    let r1 = Check.replay sut wl ~sched:f.Check.f_sched ~crash:f.Check.f_crash in
    let r2 = Check.replay sut wl ~sched:f.Check.f_sched ~crash:f.Check.f_crash in
    Alcotest.(check (option string)) (name ^ ": replay is deterministic") r1 r2

let test_mutant_early_durable () =
  expect_caught "early-durable" Config.Early_durable_publish

let test_mutant_unfenced_reproduce () =
  expect_caught "unfenced-reproduce" Config.Unfenced_reproduce

(* The unmutated engine must pass the exact schedules/crash points that
   expose the mutants — guards against oracle false positives. *)
let test_mutant_sites_clean_on_real_engine () =
  let sut = Check.dude () in
  List.iter
    (fun fault ->
      let mutant = Check.dude ~fault () in
      let wls = Check.workloads_for mutant ~threads:3 ~txs:2 in
      match Check.check_system ~budget:smoke_budget mutant wls with
      | Check.Pass _ -> Alcotest.fail "seeded bug escaped the checker"
      | Check.Fail f ->
        let wl =
          Check.workload_of_name ~threads:f.Check.f_threads
            ~txs:f.Check.f_txs f.Check.f_workload
        in
        (match
           Check.replay sut wl ~sched:f.Check.f_sched ~crash:f.Check.f_crash
         with
        | None -> ()
        | Some reason ->
          Alcotest.failf "real engine fails the mutant's triple: %s" reason))
    [ Config.Early_durable_publish; Config.Unfenced_reproduce ]

(* sched_spec round-trips through its textual form (the replay one-liner
   depends on this). *)
let test_sched_spec_roundtrip () =
  List.iter
    (fun s ->
      let s' = Check.sched_of_string (Check.sched_to_string s) in
      Alcotest.(check string)
        "sched round-trip"
        (Check.sched_to_string s)
        (Check.sched_to_string s'))
    [ Check.Default; Check.Seed 42; Check.Prefix [ 1; 0; 2 ]; Check.Prefix [] ]

(* tier1_budget honours the DUDETM_CHECK_BUDGET multiplier. *)
let test_budget_knob () =
  let base = Check.quick_budget in
  Unix.putenv "DUDETM_CHECK_BUDGET" "2";
  let scaled = Check.tier1_budget () in
  Unix.putenv "DUDETM_CHECK_BUDGET" "";
  Alcotest.(check int) "crash sites scaled" (base.Check.crash_sites * 2)
    scaled.Check.crash_sites;
  Alcotest.(check int) "exhaustive runs scaled"
    (base.Check.exhaustive_runs * 2) scaled.Check.exhaustive_runs;
  let plain = Check.tier1_budget () in
  Alcotest.(check int) "knob cleared" base.Check.crash_sites
    plain.Check.crash_sites

(* count_sites and replay agree on the crash-boundary space: replaying at a
   boundary beyond the count is still well-defined (no crash fires). *)
let test_replay_past_last_site () =
  let sut = Check.dude () in
  let wl = Check.counter ~threads:2 ~txs:1 in
  let sites = Check.count_sites sut wl ~sched:Check.Default in
  Alcotest.(check bool) "some sites" true (sites > 0);
  match Check.replay sut wl ~sched:Check.Default ~crash:(Some (sites + 10)) with
  | None -> ()
  | Some reason -> Alcotest.failf "quiescent run past last site failed: %s" reason

(* -------------------------------------------------------------------- *)
(* Media-fault campaign                                                   *)
(* -------------------------------------------------------------------- *)

(* The clean engine under seeded corruption: every run either recovers
   fully or the loss is reported — never silently wrong data. *)
let test_media_clean_engine () =
  match Check.check_media ~seeds:2 () with
  | Check.Media_pass { runs; injected } ->
    Alcotest.(check bool) "campaign ran and injected faults" true
      (runs > 0 && injected > 0)
  | Check.Media_fail mf ->
    Alcotest.failf "clean engine failed the media campaign: %s\n  %s"
      mf.Check.mf_reason
      (Check.media_replay_line mf)

(* The seeded detection-bypass mutant (CRC verification skipped) must be
   caught: corruption then reaches recovered state with nothing reported. *)
let test_media_mutant_skip_crc () =
  match Check.check_media ~fault:Config.Skip_crc_verify ~seeds:3 () with
  | Check.Media_pass _ ->
    Alcotest.fail "skip-crc-verify mutant escaped the media campaign"
  | Check.Media_fail mf ->
    (* The recorded failure replays deterministically. *)
    (match
       Check.check_media ~fault:Config.Skip_crc_verify ~mode:mf.Check.mf_mode
         ~media_seed:mf.Check.mf_seed ?crash:mf.Check.mf_crash ()
     with
    | Check.Media_fail _ -> ()
    | Check.Media_pass _ ->
      Alcotest.failf "media failure did not replay: %s"
        (Check.media_replay_line mf))

(* -------------------------------------------------------------------- *)
(* Sharded cross-commit campaign                                          *)
(* -------------------------------------------------------------------- *)

(* The real engine survives power cuts at every sampled persist boundary
   during cross-shard commits: no partial transfer, nothing acked lost. *)
let test_shards_clean_engine () =
  match Check.check_shards () with
  | Check.Shard_pass { runs; boundaries } ->
    Alcotest.(check bool) "campaign explored boundaries" true
      (runs > 1 && boundaries > 0)
  | Check.Shard_fail shf ->
    Alcotest.failf "clean engine failed the shard campaign: %s\n  %s"
      shf.Check.shf_reason
      (Check.shard_replay_line shf)

(* With the fragment gate skipped, Reproduce replays a cross-shard fragment
   before its sibling is durable — some power cut must expose a partial
   transfer.  The recorded boundary replays deterministically, and its
   one-liner carries the mutant flag. *)
let test_shards_mutant_skip_fragment_gate () =
  match Check.check_shards ~fault:Config.Skip_fragment_gate () with
  | Check.Shard_pass _ ->
    Alcotest.fail "skip-fragment-gate mutant escaped the shard campaign"
  | Check.Shard_fail shf ->
    let line = Check.shard_replay_line shf in
    let contains s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      "replay line names the mutant" true
      (contains line "--mutate skip-fragment-gate");
    (match shf.Check.shf_crash with
    | None -> Alcotest.fail "mutant should fail at a crash boundary, not the clean run"
    | Some k ->
      (match
         Check.check_shards ~fault:Config.Skip_fragment_gate ~nshards:shf.Check.shf_nshards
           ~txs:shf.Check.shf_txs ~only_crash:k ()
       with
      | Check.Shard_fail _ -> ()
      | Check.Shard_pass _ -> Alcotest.failf "shard failure did not replay: %s" line));
    (* The real engine passes the exact boundary that exposes the mutant. *)
    (match
       Check.check_shards ~nshards:shf.Check.shf_nshards ~txs:shf.Check.shf_txs
         ?only_crash:shf.Check.shf_crash ()
     with
    | Check.Shard_pass _ -> ()
    | Check.Shard_fail f ->
      Alcotest.failf "real engine fails the mutant's boundary: %s" f.Check.shf_reason)

let suite =
  [
    Alcotest.test_case "clean: dude" `Quick test_clean_dude;
    Alcotest.test_case "clean: dude-combine" `Quick test_clean_combine;
    Alcotest.test_case "clean: dude-htm" `Quick test_clean_htm;
    Alcotest.test_case "clean: mnemosyne" `Quick test_clean_mnemosyne;
    Alcotest.test_case "clean: nvml" `Quick test_clean_nvml;
    Alcotest.test_case "mutant caught: early durable publish" `Quick
      test_mutant_early_durable;
    Alcotest.test_case "mutant caught: unfenced reproduce" `Quick
      test_mutant_unfenced_reproduce;
    Alcotest.test_case "mutant triples pass on real engine" `Quick
      test_mutant_sites_clean_on_real_engine;
    Alcotest.test_case "sched spec round-trip" `Quick test_sched_spec_roundtrip;
    Alcotest.test_case "budget env knob" `Quick test_budget_knob;
    Alcotest.test_case "replay past last site is quiescent" `Quick
      test_replay_past_last_site;
    Alcotest.test_case "media campaign: clean engine never silently wrong"
      `Quick test_media_clean_engine;
    Alcotest.test_case "media campaign: skip-crc-verify mutant caught" `Quick
      test_media_mutant_skip_crc;
    Alcotest.test_case "shard campaign: clean engine all-or-nothing" `Slow
      test_shards_clean_engine;
    Alcotest.test_case "shard campaign: skip-fragment-gate mutant caught" `Slow
      test_shards_mutant_skip_fragment_gate;
  ]

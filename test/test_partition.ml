(* Keyspace partitioner tests: determinism, balance, range edges, and
   stability of shard assignment across a crash + re-attach (the
   descriptor persisted in a shard's root block survives and decodes to
   the identical mapping). *)

module Sched = Dudetm_sim.Sched
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module Partition = Dudetm_workloads.Partition
module Sh = Dudetm_shard.Shard.Make (Dudetm_tm.Tinystm)

let check = Alcotest.check

let sample_keys = List.init 512 (fun i -> Int64.of_int ((i * 7919) + 13))

let test_hash_deterministic_and_balanced () =
  let p = Partition.hashed ~nshards:8 in
  let counts = Array.make 8 0 in
  List.iter
    (fun k ->
      let s = Partition.shard_of p k in
      check Alcotest.int "stable on repeat" s (Partition.shard_of p k);
      Alcotest.(check bool) "in range" true (s >= 0 && s < 8);
      counts.(s) <- counts.(s) + 1)
    sample_keys;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d gets a fair share" i)
        true
        (c > 512 / 8 / 4))
    counts

let test_range_edges () =
  let p = Partition.range ~nshards:4 ~lo:0L ~hi:400L in
  check Alcotest.int "lo maps to first" 0 (Partition.shard_of p 0L);
  check Alcotest.int "below lo clamps" 0 (Partition.shard_of p (-5L));
  check Alcotest.int "hi clamps to last" 3 (Partition.shard_of p 400L);
  check Alcotest.int "above hi clamps" 3 (Partition.shard_of p 999L);
  check Alcotest.int "first quarter" 0 (Partition.shard_of p 99L);
  check Alcotest.int "second quarter" 1 (Partition.shard_of p 100L);
  check Alcotest.int "last quarter" 3 (Partition.shard_of p 399L);
  (* monotone: range placement never decreases with the key *)
  let prev = ref 0 in
  for k = 0 to 400 do
    let s = Partition.shard_of p (Int64.of_int k) in
    Alcotest.(check bool) "monotone" true (s >= !prev);
    prev := s
  done

let test_descriptor_roundtrip () =
  List.iter
    (fun p ->
      let p' = Partition.decode (Partition.encode p) in
      List.iter
        (fun k ->
          check Alcotest.int "same assignment after decode" (Partition.shard_of p k)
            (Partition.shard_of p' k))
        sample_keys)
    [ Partition.hashed ~nshards:5; Partition.range ~nshards:7 ~lo:(-100L) ~hi:10_000L ];
  (try
     ignore (Partition.decode [| 1L |]);
     Alcotest.fail "short descriptor should be rejected"
   with Invalid_argument _ -> ())

(* Persist the descriptor in shard 0's root block, crash without a drain,
   re-attach, decode — every sampled key must land on its original
   shard. *)
let test_stable_across_reattach () =
  let nshards = 4 in
  let cfg =
    {
      Config.default with
      Config.heap_size = 1 lsl 16;
      nthreads = 2;
      vlog_capacity = 256;
      plog_size = 1 lsl 13;
      meta_size = 8192;
      checkpoint_records = 2;
    }
  in
  let p = Partition.range ~nshards ~lo:0L ~hi:1_000_000L in
  let before = List.map (Partition.shard_of p) sample_keys in
  let sh = Sh.create ~nshards cfg in
  ignore
    (Sched.run (fun () ->
         Sh.start sh;
         (match
            Sh.atomically sh ~thread:0 ~shards:[ 0 ] (fun tx ->
                Array.iteri
                  (fun i w -> Sh.write tx ~shard:0 (8 * i) w)
                  (Partition.encode p))
          with
         | Some (_, ack) -> Sh.wait_durable sh ack
         | None -> Alcotest.fail "descriptor write aborted");
         (* crash: no drain, no stop *)
         ()));
  Array.init nshards (Sh.nvm sh) |> Array.iter Nvm.crash;
  let sh2, _ = Sh.attach ~nshards cfg (Array.init nshards (Sh.nvm sh)) in
  let words =
    Array.init Partition.descriptor_words (fun i ->
        Sh.Engine.heap_read_u64 (Sh.engine sh2 0) (8 * i))
  in
  let p' = Partition.decode words in
  let after = List.map (Partition.shard_of p') sample_keys in
  List.iter2 (fun b a -> check Alcotest.int "assignment survives re-attach" b a) before after

let suite =
  [
    Alcotest.test_case "hash determinism and balance" `Quick test_hash_deterministic_and_balanced;
    Alcotest.test_case "range edges and monotonicity" `Quick test_range_edges;
    Alcotest.test_case "descriptor roundtrip" `Quick test_descriptor_roundtrip;
    Alcotest.test_case "stable across re-attach" `Quick test_stable_across_reattach;
  ]

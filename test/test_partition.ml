(* Keyspace partitioner tests: determinism, balance, range edges, and
   stability of shard assignment across a crash + re-attach (the
   descriptor persisted in a shard's root block survives and decodes to
   the identical mapping). *)

module Sched = Dudetm_sim.Sched
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module Partition = Dudetm_workloads.Partition
module Sh = Dudetm_shard.Shard.Make (Dudetm_tm.Tinystm)

let check = Alcotest.check

let sample_keys = List.init 512 (fun i -> Int64.of_int ((i * 7919) + 13))

let test_hash_deterministic_and_balanced () =
  let p = Partition.hashed ~nshards:8 in
  let counts = Array.make 8 0 in
  List.iter
    (fun k ->
      let s = Partition.shard_of p k in
      check Alcotest.int "stable on repeat" s (Partition.shard_of p k);
      Alcotest.(check bool) "in range" true (s >= 0 && s < 8);
      counts.(s) <- counts.(s) + 1)
    sample_keys;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d gets a fair share" i)
        true
        (c > 512 / 8 / 4))
    counts

let test_range_edges () =
  let p = Partition.range ~nshards:4 ~lo:0L ~hi:400L in
  check Alcotest.int "lo maps to first" 0 (Partition.shard_of p 0L);
  check Alcotest.int "below lo clamps" 0 (Partition.shard_of p (-5L));
  check Alcotest.int "hi clamps to last" 3 (Partition.shard_of p 400L);
  check Alcotest.int "above hi clamps" 3 (Partition.shard_of p 999L);
  check Alcotest.int "first quarter" 0 (Partition.shard_of p 99L);
  check Alcotest.int "second quarter" 1 (Partition.shard_of p 100L);
  check Alcotest.int "last quarter" 3 (Partition.shard_of p 399L);
  (* monotone: range placement never decreases with the key *)
  let prev = ref 0 in
  for k = 0 to 400 do
    let s = Partition.shard_of p (Int64.of_int k) in
    Alcotest.(check bool) "monotone" true (s >= !prev);
    prev := s
  done

let test_descriptor_roundtrip () =
  List.iter
    (fun p ->
      let p' = Partition.decode (Partition.encode p) in
      List.iter
        (fun k ->
          check Alcotest.int "same assignment after decode" (Partition.shard_of p k)
            (Partition.shard_of p' k))
        sample_keys)
    [ Partition.hashed ~nshards:5; Partition.range ~nshards:7 ~lo:(-100L) ~hi:10_000L ];
  (try
     ignore (Partition.decode [| 1L |]);
     Alcotest.fail "short descriptor should be rejected"
   with Invalid_argument _ -> ())

(* Persist the descriptor in shard 0's root block, crash without a drain,
   re-attach, decode — every sampled key must land on its original
   shard. *)
let test_stable_across_reattach () =
  let nshards = 4 in
  let cfg =
    {
      Config.default with
      Config.heap_size = 1 lsl 16;
      nthreads = 2;
      vlog_capacity = 256;
      plog_size = 1 lsl 13;
      meta_size = 8192;
      checkpoint_records = 2;
    }
  in
  let p = Partition.range ~nshards ~lo:0L ~hi:1_000_000L in
  let before = List.map (Partition.shard_of p) sample_keys in
  let sh = Sh.create ~nshards cfg in
  ignore
    (Sched.run (fun () ->
         Sh.start sh;
         (match
            Sh.atomically sh ~thread:0 ~shards:[ 0 ] (fun tx ->
                Array.iteri
                  (fun i w -> Sh.write tx ~shard:0 (8 * i) w)
                  (Partition.encode p))
          with
         | Some (_, ack) -> Sh.wait_durable sh ack
         | None -> Alcotest.fail "descriptor write aborted");
         (* crash: no drain, no stop *)
         ()));
  Array.init nshards (Sh.nvm sh) |> Array.iter Nvm.crash;
  let sh2, _ = Sh.attach ~nshards cfg (Array.init nshards (Sh.nvm sh)) in
  let words =
    Array.init Partition.descriptor_words (fun i ->
        Sh.Engine.heap_read_u64 (Sh.engine sh2 0) (8 * i))
  in
  let p' = Partition.decode words in
  let after = List.map (Partition.shard_of p') sample_keys in
  List.iter2 (fun b a -> check Alcotest.int "assignment survives re-attach" b a) before after

(* ----------------------- degenerate range shapes ------------------------- *)

let rejects name f =
  match f () with
  | _ -> Alcotest.failf "%s accepted" name
  | exception Invalid_argument _ -> ()

let test_degenerate_ranges () =
  (* Empty ranges and empty/bad owner tables are rejected eagerly. *)
  rejects "empty range" (fun () -> Partition.range ~nshards:4 ~lo:10L ~hi:10L);
  rejects "inverted range" (fun () -> Partition.range ~nshards:4 ~lo:10L ~hi:3L);
  rejects "empty bucket range" (fun () ->
      Partition.buckets ~nshards:4 ~lo:7L ~hi:7L ~owners:[| 0 |]);
  rejects "no buckets" (fun () ->
      Partition.buckets ~nshards:4 ~lo:0L ~hi:8L ~owners:[||]);
  rejects "owner out of range" (fun () ->
      Partition.buckets ~nshards:4 ~lo:0L ~hi:8L ~owners:[| 0; 4 |]);
  (* Single-key range: one key, everything clamps onto it. *)
  let single = Partition.buckets ~nshards:4 ~lo:7L ~hi:8L ~owners:[| 3 |] in
  check Alcotest.int "the single key maps to its owner" 3 (Partition.shard_of single 7L);
  check Alcotest.int "below the single key clamps" 3
    (Partition.shard_of single Int64.min_int);
  check Alcotest.int "above the single key clamps" 3
    (Partition.shard_of single Int64.max_int);
  check Alcotest.int "one bucket" 1 (Partition.nbuckets single);
  (* Full keyspace [min_int, max_int): the span wraps signed subtraction,
     so this exercises the unsigned width arithmetic. *)
  let full = Partition.range ~nshards:4 ~lo:Int64.min_int ~hi:Int64.max_int in
  check Alcotest.int "min_int lands on the first shard" 0
    (Partition.shard_of full Int64.min_int);
  check Alcotest.int "max_int-1 lands on the last shard" 3
    (Partition.shard_of full (Int64.sub Int64.max_int 1L));
  check Alcotest.int "zero is the midpoint" 2 (Partition.shard_of full 0L);
  let samples =
    [ Int64.min_int; Int64.div Int64.min_int 2L; -1L; 0L; Int64.div Int64.max_int 2L;
      Int64.sub Int64.max_int 1L ]
  in
  let prev = ref 0 in
  List.iter
    (fun k ->
      let s = Partition.shard_of full k in
      Alcotest.(check bool) "full-keyspace placement is monotone" true (s >= !prev);
      prev := s)
    samples

(* --------------------- sealed bucket descriptors ------------------------- *)

let invalid name f =
  match f () with
  | _ -> Alcotest.failf "%s accepted" name
  | exception Partition.Invalid_partition _ -> ()

let test_buckets_seal_unseal () =
  let p =
    Partition.buckets ~nshards:8 ~lo:0L ~hi:1024L ~owners:[| 0; 0; 1; 1; 2; 2; 3; 3 |]
  in
  let s = Partition.seal p in
  check Alcotest.int "sealed_words counts the CRC word" (Array.length s)
    (Partition.sealed_words p);
  let p' = Partition.unseal ~expect_nshards:8 s in
  check Alcotest.bool "owners survive the seal roundtrip" true
    (Partition.owners p = Partition.owners p');
  List.iter
    (fun k ->
      check Alcotest.int "same assignment after unseal" (Partition.shard_of p k)
        (Partition.shard_of p' k))
    sample_keys;
  invalid "CRC-corrupt descriptor" (fun () ->
      let c = Array.copy s in
      c.(1) <- Int64.logxor c.(1) 0x40L;
      Partition.unseal c);
  invalid "shard-count mismatch" (fun () -> Partition.unseal ~expect_nshards:4 s);
  invalid "short sealed descriptor" (fun () -> Partition.unseal (Array.sub s 0 2));
  invalid "truncated owner table" (fun () ->
      Partition.unseal (Array.sub s 0 (Array.length s - 1)))

(* -------------------- split, then merge, across re-attach ----------------- *)

(* Ownership edits persisted through the handoff journal's descriptor
   record: split a bucket off to another shard, power-cut, re-attach, then
   merge it back, power-cut, re-attach — the final mapping must be the
   original one, under a strictly newer epoch. *)
let test_split_merge_roundtrip_across_reattach () =
  let nshards = 4 in
  let cfg =
    {
      Config.default with
      Config.heap_size = 1 lsl 16;
      nthreads = 2;
      vlog_capacity = 256;
      plog_size = 1 lsl 13;
      meta_size = 8192;
      checkpoint_records = 2;
    }
  in
  let part0 =
    Partition.buckets ~nshards ~lo:0L ~hi:1024L ~owners:[| 0; 1; 2; 3 |]
  in
  let before = List.map (Partition.shard_of part0) sample_keys in
  let sh = Sh.create ~nshards cfg in
  let dev0 = Sh.nvm sh 0 in
  let base = Config.hjournal_base cfg in
  let module Handoff = Dudetm_shard.Handoff in
  let hj = Handoff.format dev0 ~base ~part:part0 ~epoch:1 in
  (* Split: bucket 1 moves from shard 1 to shard 3. *)
  Handoff.seal_descriptor hj (Partition.with_owner part0 ~blo:1 ~bhi:2 ~owner:3)
    ~epoch:2;
  Nvm.crash dev0;
  let hj2 = Handoff.attach dev0 ~base ~nshards in
  check Alcotest.int "split survives the re-attach" 3
    (Partition.owners (Handoff.partition hj2)).(1);
  check Alcotest.int "split epoch" 2 (Handoff.epoch hj2);
  (* Merge: hand the bucket back to shard 1. *)
  Handoff.seal_descriptor hj2
    (Partition.with_owner (Handoff.partition hj2) ~blo:1 ~bhi:2 ~owner:1)
    ~epoch:3;
  Nvm.crash dev0;
  let hj3 = Handoff.attach dev0 ~base ~nshards in
  check Alcotest.int "merge epoch is strictly newer" 3 (Handoff.epoch hj3);
  let after = List.map (Partition.shard_of (Handoff.partition hj3)) sample_keys in
  List.iter2
    (fun b a -> check Alcotest.int "split-then-merge restores the mapping" b a)
    before after

let suite =
  [
    Alcotest.test_case "hash determinism and balance" `Quick test_hash_deterministic_and_balanced;
    Alcotest.test_case "range edges and monotonicity" `Quick test_range_edges;
    Alcotest.test_case "descriptor roundtrip" `Quick test_descriptor_roundtrip;
    Alcotest.test_case "stable across re-attach" `Quick test_stable_across_reattach;
    Alcotest.test_case "degenerate ranges: empty, single-key, full keyspace" `Quick
      test_degenerate_ranges;
    Alcotest.test_case "sealed bucket descriptors: roundtrip and rejection" `Quick
      test_buckets_seal_unseal;
    Alcotest.test_case "split-then-merge roundtrip across re-attach" `Quick
      test_split_merge_roundtrip_across_reattach;
  ]

(* Engine edge cases: whole-pipeline determinism, tiny rings under
   pressure, checkpoint-interval sweeps, config validation, repeated
   crash/recovery chains, and paging + recovery interaction. *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module D = Dudetm_core.Dudetm.Make (Dudetm_tm.Tinystm)

let check = Alcotest.check

exception Crashed

let base_cfg =
  {
    Config.default with
    Config.heap_size = 1 lsl 20;
    nthreads = 3;
    vlog_capacity = 512;
    plog_size = 1 lsl 14;
  }

let counter_tx t thread =
  ignore
    (D.atomically t ~thread (fun tx ->
         let c = D.read tx 0 in
         let c1 = Int64.add c 1L in
         D.write tx (8 + (8 * (Int64.to_int c1 land 127))) c1;
         D.write tx 0 c1))

let run_fixed cfg ~txs_per_thread =
  let t = D.create cfg in
  let cycles =
    Sched.run (fun () ->
        D.start t;
        let remaining = ref (cfg.Config.nthreads * txs_per_thread) in
        for th = 0 to cfg.Config.nthreads - 1 do
          ignore
            (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                 for _ = 1 to txs_per_thread do
                   counter_tx t th;
                   decr remaining
                 done))
        done;
        Sched.wait_until ~label:"done" (fun () -> !remaining = 0);
        D.drain t;
        D.stop t)
  in
  (t, cycles)

let test_whole_engine_deterministic () =
  let _, c1 = run_fixed base_cfg ~txs_per_thread:100 in
  let _, c2 = run_fixed base_cfg ~txs_per_thread:100 in
  check Alcotest.int "identical runs take identical simulated time" c1 c2

let test_tiny_rings_under_pressure () =
  (* Volatile ring of 16 entries, persistent ring of 4 KiB: both rings
     recycle constantly and the run still completes correctly. *)
  let cfg = { base_cfg with Config.vlog_capacity = 16; plog_size = 4096 } in
  let t, _ = run_fixed cfg ~txs_per_thread:150 in
  check Alcotest.int64 "counter correct despite tiny rings" 450L (D.heap_read_u64 t 0);
  check Alcotest.int64 "persisted too" 450L (Nvm.persisted_u64 (D.nvm t) 0)

let test_checkpoint_interval_sweep () =
  List.iter
    (fun interval ->
      let cfg = { base_cfg with Config.checkpoint_records = interval } in
      let t, _ = run_fixed cfg ~txs_per_thread:80 in
      Nvm.crash (D.nvm t);
      let t2, report = D.attach cfg (D.nvm t) in
      check Alcotest.int
        (Printf.sprintf "durable complete at checkpoint interval %d" interval)
        240 report.Dudetm_core.Dudetm.durable;
      check Alcotest.int64 "state complete" 240L (D.heap_read_u64 t2 0))
    [ 1; 4; 64 ]

let test_repeated_crash_chain () =
  (* Crash, recover, run, crash, recover, ... five generations. *)
  let cfg = base_cfg in
  let t = ref (D.create cfg) in
  let expect = ref 0 in
  for gen = 1 to 5 do
    (try
       ignore
         (Sched.run (fun () ->
              D.start !t;
              for th = 0 to cfg.Config.nthreads - 1 do
                ignore
                  (Sched.spawn (Printf.sprintf "g%d-w%d" gen th) (fun () ->
                       while true do
                         counter_tx !t th
                       done))
              done;
              Sched.advance (40_000 * gen);
              raise Crashed))
     with Crashed -> ());
    Nvm.crash ~evict_fraction:0.3 ~rng:(Rng.create gen) (D.nvm !t);
    let t2, report = D.attach cfg (D.nvm !t) in
    let d = report.Dudetm_core.Dudetm.durable in
    check Alcotest.bool
      (Printf.sprintf "generation %d made progress" gen)
      true (d > !expect);
    check Alcotest.int64
      (Printf.sprintf "generation %d state matches durable id" gen)
      (Int64.of_int d) (D.heap_read_u64 t2 0);
    expect := d;
    t := t2
  done

(* Touch 48 distinct pages so a 16-frame shadow must page constantly. *)
let paged_tx t thread =
  ignore
    (D.atomically t ~thread (fun tx ->
         let c = D.read tx 0 in
         let c1 = Int64.add c 1L in
         D.write tx (4096 * (1 + (Int64.to_int c1 mod 48))) c1;
         D.write tx 0 c1))

let test_paged_shadow_pipeline_and_recovery () =
  (* 16-frame shadow over a 48-page working set: constant paging during
     the run, then crash + recovery; the recovered state must match. *)
  let cfg = { base_cfg with Config.shadow_frames = Some 16 } in
  let t = D.create cfg in
  ignore
    (Sched.run (fun () ->
         D.start t;
         let remaining = ref (3 * 120) in
         for th = 0 to 2 do
           ignore
             (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                  for _ = 1 to 120 do
                    paged_tx t th;
                    decr remaining
                  done))
         done;
         Sched.wait_until ~label:"done" (fun () -> !remaining = 0);
         D.drain t;
         D.stop t));
  check Alcotest.int64 "paged run correct" 360L (D.heap_read_u64 t 0);
  (match D.shadow_stats t with
  | Some s ->
    check Alcotest.bool "paging actually happened" true
      (Dudetm_sim.Stats.get s "evictions" > 0)
  | None -> Alcotest.fail "expected a paged shadow");
  Nvm.crash (D.nvm t);
  let t2, report = D.attach cfg (D.nvm t) in
  check Alcotest.int "all durable after drain" 360 report.Dudetm_core.Dudetm.durable;
  check Alcotest.int64 "recovered state" 360L (D.heap_read_u64 t2 0)

let test_combined_group_sizes () =
  List.iter
    (fun group ->
      let cfg =
        { base_cfg with Config.combine = true; compress = true; group_size = group;
          plog_size = 1 lsl 16 }
      in
      let t, _ = run_fixed cfg ~txs_per_thread:100 in
      check Alcotest.int64
        (Printf.sprintf "combined group %d completes" group)
        300L (D.heap_read_u64 t 0);
      check Alcotest.int
        (Printf.sprintf "all durable at group %d" group)
        300 (D.durable_id t))
    [ 2; 16; 128 ]

let test_config_validation () =
  let reject msg cfg = Alcotest.check_raises msg (Invalid_argument "dummy") (fun () ->
      try Config.validate cfg
      with Config.Invalid_config _ -> raise (Invalid_argument "dummy"))
  in
  reject "unaligned heap" { base_cfg with Config.heap_size = 12345 };
  reject "combine with many persist threads"
    { base_cfg with Config.combine = true; persist_threads = 2 };
  reject "compress without combine" { base_cfg with Config.compress = true };
  reject "sync with combine"
    { base_cfg with Config.mode = Config.Sync; combine = true; group_size = 4 };
  reject "zero threads" { base_cfg with Config.nthreads = 0 };
  Config.validate base_cfg (* the base must be valid *)

let test_bad_thread_index_rejected () =
  let t = D.create base_cfg in
  Alcotest.check_raises "thread index out of range"
    (Invalid_argument "Dudetm.atomically: bad thread index") (fun () ->
      ignore (D.atomically t ~thread:99 (fun _ -> ())))

let test_attach_wrong_size_rejected () =
  let t = D.create base_cfg in
  let other = { base_cfg with Config.nthreads = 7 } in
  Alcotest.check_raises "device/config mismatch rejected"
    (Invalid_argument "Dudetm.attach: device size does not match the configuration")
    (fun () -> ignore (D.attach other (D.nvm t)))

let suite =
  [
    Alcotest.test_case "whole-engine determinism" `Quick test_whole_engine_deterministic;
    Alcotest.test_case "tiny rings under pressure" `Quick test_tiny_rings_under_pressure;
    Alcotest.test_case "checkpoint interval sweep" `Quick test_checkpoint_interval_sweep;
    Alcotest.test_case "repeated crash chain" `Quick test_repeated_crash_chain;
    Alcotest.test_case "paged shadow pipeline and recovery" `Quick
      test_paged_shadow_pipeline_and_recovery;
    Alcotest.test_case "combined group sizes" `Quick test_combined_group_sizes;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "bad thread index rejected" `Quick test_bad_thread_index_rejected;
    Alcotest.test_case "attach with wrong config rejected" `Quick
      test_attach_wrong_size_rejected;
  ]

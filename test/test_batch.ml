(* Bounded adaptive group commit: batch-partition combine/replay
   equivalence, per-batch durable-watermark advance, deadline-triggered
   batches under bursty arrivals, pipelined combine/flush overlap in the
   trace, and the batch-boundary crash campaign (clean pass + seeded
   Skip_batch_seal mutant caught). *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Stats = Dudetm_sim.Stats
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module Log_entry = Dudetm_log.Log_entry
module Combine = Dudetm_log.Combine
module Trace = Dudetm_trace.Trace
module Check = Dudetm_check.Check
module D = Dudetm_core.Dudetm.Make (Dudetm_tm.Tinystm)
module Sh = Dudetm_shard.Shard.Make (Dudetm_tm.Tinystm)

let check = Alcotest.check

(* ----------------- batch-partition combine equivalence ---------------- *)

(* Replay a combined entry stream onto a tiny model heap.  Allocation
   events and end marks feed different recovery structures (the allocator
   journal and the durable watermark), so each class must survive in
   order, but sealing is free to interleave the two classes differently
   than the raw stream — collect them separately. *)
let replay_model entries =
  let heap = Array.make 16 0L in
  let allocs = ref [] and ends = ref [] in
  List.iter
    (fun e ->
      match e with
      | Log_entry.Write { addr; value } -> heap.(addr / 8) <- value
      | Log_entry.Tx_end _ -> ends := e :: !ends
      | _ -> allocs := e :: !allocs)
    entries;
  (heap, List.rev !allocs, List.rev !ends)

(* Random groups: writes over a small address set interleaved with
   allocation events and end marks, then a random partition into batches. *)
let gen_group_and_cuts =
  QCheck2.Gen.(
    let entry =
      frequency
        [
          ( 6,
            map2
              (fun a v -> Log_entry.Write { addr = 8 * a; value = Int64.of_int v })
              (int_range 0 15) (int_range 0 1000) );
          (1, map (fun o -> Log_entry.Alloc { off = 256 + (8 * o); len = 8 }) (int_range 0 30));
          (1, map (fun o -> Log_entry.Free { off = 256 + (8 * o); len = 8 }) (int_range 0 30));
          (2, map (fun t -> Log_entry.Tx_end { tid = t }) (int_range 1 50));
        ]
    in
    tup2 (list_size (int_range 1 120) entry) (list_size (int_range 1 12) (int_range 1 20)))

(* Chunk [l] by the cut sizes, cycling; the tail is one final batch. *)
let partition l cuts =
  let rec go l cs acc =
    match l with
    | [] -> List.rev acc
    | _ ->
      let n = match cs with c :: _ -> c | [] -> max_int in
      let cs = match cs with _ :: (_ :: _ as tl) -> tl | other -> other in
      let rec split i l front =
        match l with
        | x :: tl when i < n -> split (i + 1) tl (x :: front)
        | _ -> (List.rev front, l)
      in
      let front, back = split 0 l [] in
      go back cs (front :: acc)
  in
  go l cuts []

let prop_partition_equivalence =
  QCheck2.Test.make ~name:"batch: any partition combines+replays like a full drain"
    ~count:300 gen_group_and_cuts (fun (group, cuts) ->
      let full, _ = Combine.combine group in
      let b = Combine.builder () in
      let chunked =
        List.concat_map
          (fun batch ->
            Combine.feed_list b batch;
            let sealed, _ = Combine.seal b in
            sealed)
          (partition group cuts)
      in
      if Combine.pending b <> 0 then
        QCheck2.Test.fail_reportf "seal left %d entries in the builder"
          (Combine.pending b);
      let h1, a1, e1 = replay_model full in
      let h2, a2, e2 = replay_model chunked in
      if h1 <> h2 then QCheck2.Test.fail_reportf "replayed heap state diverged";
      if a1 <> a2 then
        QCheck2.Test.fail_reportf
          "allocation events differ between partitioned and full combine";
      if e1 <> e2 then
        QCheck2.Test.fail_reportf
          "transaction end marks differ between partitioned and full combine";
      true)

(* One builder reused across seals must behave like fresh builders. *)
let test_builder_reuse () =
  let group =
    [
      Log_entry.Write { addr = 0; value = 1L };
      Log_entry.Write { addr = 8; value = 2L };
      Log_entry.Tx_end { tid = 1 };
      Log_entry.Write { addr = 0; value = 3L };
      Log_entry.Tx_end { tid = 2 };
    ]
  in
  let b = Combine.builder () in
  Combine.feed_list b group;
  let s1, st1 = Combine.seal b in
  check Alcotest.int "all entries fed" 5 st1.Combine.entries_in;
  check Alcotest.int "builder drained" 0 (Combine.pending b);
  (* Second batch through the same builder: no leakage from the first. *)
  Combine.feed b (Log_entry.Write { addr = 16; value = 9L });
  Combine.feed b (Log_entry.Tx_end { tid = 3 });
  let s2, st2 = Combine.seal b in
  check Alcotest.int "second batch counts only its own entries" 2 st2.Combine.entries_in;
  let full, _ = Combine.combine group in
  check Alcotest.bool "first seal equals monolithic combine" true (s1 = full);
  check Alcotest.int "second seal holds only the new write + end" 2 (List.length s2)

(* ------------------- per-batch watermark advance ----------------------- *)

let batch_cfg ?(combine = false) ?(group_size = 1) () =
  {
    Config.default with
    Config.heap_size = 1 lsl 16;
    nthreads = 3;
    vlog_capacity = 128;
    plog_size = 1 lsl 13;
    meta_size = 8192;
    checkpoint_records = 2;
    batch_min_entries = 2;
    batch_max_entries = 8;
    batch_deadline = 300;
    combine;
    compress = combine;
    group_size;
    seed = 5;
  }

let counter_tx t thread =
  ignore
    (D.atomically t ~thread (fun tx ->
         let c = Int64.add (D.read tx (D.root_base t)) 1L in
         D.write tx (8 + (8 * (Int64.to_int c mod 8))) c;
         D.write tx (D.root_base t) c))

(* The durable ID sampled at every persist boundary must rise in bounded
   per-batch steps: monotone, never past the last issued transaction, and
   advancing many times (one giant end-of-run flush would advance once). *)
let test_watermark_per_batch () =
  let cfg = batch_cfg () in
  let t = D.create cfg in
  let samples = ref [] in
  Nvm.set_persist_hook (D.nvm t)
    (Some (fun () -> samples := (D.durable_id t, D.last_tid t) :: !samples));
  ignore
    (Sched.run (fun () ->
         D.start t;
         let done_ = ref 0 in
         for th = 0 to cfg.Config.nthreads - 1 do
           ignore
             (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                  for _ = 1 to 30 do
                    Sched.advance 20;
                    counter_tx t th
                  done;
                  incr done_))
         done;
         Sched.wait_until ~label:"workers" (fun () -> !done_ = cfg.Config.nthreads);
         D.drain t;
         D.stop t));
  Nvm.set_persist_hook (D.nvm t) None;
  let samples = List.rev !samples in
  let last = ref 0 and advances = ref 0 in
  List.iter
    (fun (d, issued) ->
      if d < !last then Alcotest.failf "durable watermark regressed: %d after %d" d !last;
      if d > issued then
        Alcotest.failf "durable id %d passed the last issued transaction %d" d issued;
      if d > !last then begin
        incr advances;
        (* Per-batch advance: one record covers at most the entry bound,
           and the smallest transaction here writes 3 entries. *)
        if d - !last > cfg.Config.batch_max_entries then
          Alcotest.failf "watermark jumped %d transactions, batches hold at most %d"
            (d - !last) cfg.Config.batch_max_entries
      end;
      last := d)
    samples;
  check Alcotest.int "everything durable at quiescence" 90 (D.durable_id t);
  if !advances < 10 then
    Alcotest.failf "only %d watermark advances over 90 txs: not per-batch" !advances

(* Sharded: each shard's effective vector watermark must be monotone at
   every persist boundary of every device. *)
let test_vector_watermark_monotone () =
  let cfg = batch_cfg () in
  let nshards = 2 in
  let sh = Sh.create ~nshards cfg in
  let last = Array.make nshards 0 in
  let hook () =
    Array.iteri
      (fun s e ->
        if e < last.(s) then
          Alcotest.failf "shard %d effective watermark regressed: %d after %d" s e last.(s)
        else last.(s) <- e)
      (Sh.effective_vector sh)
  in
  ignore
    (Sched.run (fun () ->
         Sh.start sh;
         for s = 0 to nshards - 1 do
           Nvm.set_persist_hook (Sh.nvm sh s) (Some hook)
         done;
         for k = 1 to 12 do
           let a = k mod nshards and b = (k + 1) mod nshards in
           ignore
             (Sh.atomically sh ~thread:(k mod 3) ~shards:[ a; b ] (fun tx ->
                  let va = Sh.read tx ~shard:a 0 in
                  let vb = Sh.read tx ~shard:b 0 in
                  Sh.write tx ~shard:a 0 (Int64.sub va 1L);
                  Sh.write tx ~shard:b 0 (Int64.add vb 1L)))
         done;
         for s = 0 to nshards - 1 do
           Nvm.set_persist_hook (Sh.nvm sh s) None
         done;
         Sh.stop sh));
  check Alcotest.bool "watermarks advanced" true (Array.exists (fun e -> e > 0) last)

(* ---------------- deadline batches under bursty arrivals --------------- *)

let test_bursty_deadline_respects_bound () =
  let cfg = batch_cfg () in
  let t = D.create cfg in
  ignore
    (Sched.run (fun () ->
         D.start t;
         let done_ = ref 0 in
         for th = 0 to cfg.Config.nthreads - 1 do
           ignore
             (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                  let rng = Rng.create (17 + th) in
                  for burst = 1 to 8 do
                    (* A burst of back-to-back commits, then a lull well
                       past the deadline. *)
                    for _ = 1 to 1 + Rng.int rng 6 do
                      counter_tx t th
                    done;
                    Sched.advance (if burst mod 2 = 0 then 2_000 else Rng.int rng 100)
                  done;
                  incr done_))
         done;
         Sched.wait_until ~label:"workers" (fun () -> !done_ = cfg.Config.nthreads);
         D.drain t;
         D.stop t));
  let st = D.stats t in
  let hwm = Stats.get st "batch_hwm_entries" in
  if hwm > cfg.Config.batch_max_entries then
    Alcotest.failf "a batch held %d entries, bound is %d" hwm
      cfg.Config.batch_max_entries;
  check Alcotest.bool "deadline-triggered batches occurred" true
    (Stats.get st "batch_deadline_flushes" > 0);
  check Alcotest.bool "size-triggered batches occurred" true
    (Stats.get st "batch_size_flushes" > 0)

(* ------------------- pipelined combine/flush overlap ------------------- *)

let test_pipeline_overlap_in_trace () =
  Trace.enable ~capacity:(1 lsl 16) ();
  Fun.protect
    ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    (fun () ->
      let cfg =
        {
          (batch_cfg ~combine:true ~group_size:6 ()) with
          Config.pmem =
            (* A slow channel stretches each record's NVM write so the
               combiner demonstrably seals the next batch under it. *)
            {
              Dudetm_nvm.Pmem_config.default with
              Dudetm_nvm.Pmem_config.bandwidth_gbps = 0.25;
              persist_latency = 500;
            };
        }
      in
      let t = D.create cfg in
      ignore
        (Sched.run (fun () ->
             D.start t;
             let done_ = ref 0 in
             for th = 0 to cfg.Config.nthreads - 1 do
               ignore
                 (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                      for _ = 1 to 60 do
                        Sched.advance 20;
                        counter_tx t th
                      done;
                      incr done_))
             done;
             Sched.wait_until ~label:"workers" (fun () ->
                 !done_ = cfg.Config.nthreads);
             D.drain t;
             D.stop t));
      let overlap = Trace.span_overlap ~cat:"persist" "combine" "flush" in
      if overlap <= 0 then
        Alcotest.failf
          "no combine/flush overlap: the persist pipeline did not run stage 2 under \
           stage 1";
      check (Alcotest.list Alcotest.string) "trace structurally clean" []
        (Trace.validate ());
      let json = Trace.to_chrome_json () in
      let has_substring hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      check Alcotest.bool "chrome trace carries the combine spans" true
        (has_substring json "\"combine\"");
      check Alcotest.bool "chrome trace carries the flush spans" true
        (has_substring json "\"flush\""))

(* ---------------------- batch crash campaign --------------------------- *)

let test_check_batch_clean () =
  match Check.check_batch ~txs:4 () with
  | Check.Batch_pass { runs; boundaries } ->
    check Alcotest.bool "swept a real boundary count" true (boundaries > 20);
    check Alcotest.bool "ran the sweep" true (runs > 20)
  | Check.Batch_fail f ->
    Alcotest.failf "clean engine failed the batch campaign: %s (replay: %s)"
      f.Check.bt_reason (Check.batch_replay_line f)

let test_check_batch_catches_skip_seal () =
  match Check.check_batch ~fault:Config.Skip_batch_seal ~txs:4 () with
  | Check.Batch_pass _ ->
    Alcotest.fail "Skip_batch_seal mutant survived the batch campaign"
  | Check.Batch_fail f ->
    let line = Check.batch_replay_line f in
    let has_substring hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    check Alcotest.bool "replay line names the mutant" true
      (has_substring line "--mutate skip-batch-seal");
    check Alcotest.bool "replay line is a --batch invocation" true
      (has_substring line "check --batch")

let test_skip_batch_seal_needs_combine () =
  match
    Config.validate { Config.default with Config.fault = Config.Skip_batch_seal }
  with
  | () -> Alcotest.fail "Skip_batch_seal accepted without the combined persist path"
  | exception Config.Invalid_config _ -> ()

let suite =
  [
    Alcotest.test_case "batch: builder reuse across seals" `Quick test_builder_reuse;
    QCheck_alcotest.to_alcotest prop_partition_equivalence;
    Alcotest.test_case "batch: durable watermark advances per batch" `Quick
      test_watermark_per_batch;
    Alcotest.test_case "batch: shard vector watermark monotone" `Quick
      test_vector_watermark_monotone;
    Alcotest.test_case "batch: bursty deadline batches respect the bound" `Quick
      test_bursty_deadline_respects_bound;
    Alcotest.test_case "batch: combine of k+1 overlaps flush of k" `Quick
      test_pipeline_overlap_in_trace;
    Alcotest.test_case "batch: crash campaign passes the real engine" `Slow
      test_check_batch_clean;
    Alcotest.test_case "batch: crash campaign catches Skip_batch_seal" `Quick
      test_check_batch_catches_skip_seal;
    Alcotest.test_case "batch: Skip_batch_seal requires combine" `Quick
      test_skip_batch_seal_needs_combine;
  ]

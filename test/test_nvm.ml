(* Simulated persistent-memory device tests: persistence semantics, crash
   behaviour, adversarial evictions, traffic accounting. *)

module Mem = Dudetm_nvm.Mem
module Nvm = Dudetm_nvm.Nvm
module Pmem_config = Dudetm_nvm.Pmem_config
module Rng = Dudetm_sim.Rng

let check = Alcotest.check

let device ?(charge_time = false) ?(size = 4096) () =
  Nvm.create ~charge_time Pmem_config.default ~size

let test_store_load () =
  let d = device () in
  Nvm.store_u64 d 0 42L;
  Nvm.store_u64 d 1024 7L;
  check Alcotest.int64 "load sees latest" 42L (Nvm.load_u64 d 0);
  check Alcotest.int64 "load sees latest elsewhere" 7L (Nvm.load_u64 d 1024)

let test_unpersisted_lost_on_crash () =
  let d = device () in
  Nvm.store_u64 d 0 42L;
  Nvm.crash d;
  check Alcotest.int64 "unflushed store is lost" 0L (Nvm.load_u64 d 0)

let test_persisted_survives_crash () =
  let d = device () in
  Nvm.store_u64 d 0 42L;
  Nvm.persist d ~off:0 ~len:8;
  Nvm.store_u64 d 8 99L (* dirty again, not persisted *);
  Nvm.crash d;
  check Alcotest.int64 "persisted store survives" 42L (Nvm.load_u64 d 0);
  check Alcotest.int64 "later unflushed store is lost" 0L (Nvm.load_u64 d 8)

let test_persist_is_range_scoped () =
  let d = device () in
  Nvm.store_u64 d 0 1L;
  Nvm.store_u64 d 2048 2L;
  Nvm.persist d ~off:0 ~len:8;
  Nvm.crash d;
  check Alcotest.int64 "in-range persisted" 1L (Nvm.load_u64 d 0);
  check Alcotest.int64 "out-of-range lost" 0L (Nvm.load_u64 d 2048)

let test_line_granularity () =
  (* Persisting one byte of a line flushes the whole line's content. *)
  let d = device () in
  Nvm.store_u64 d 0 1L;
  Nvm.store_u64 d 8 2L;
  Nvm.persist d ~off:0 ~len:1;
  Nvm.crash d;
  check Alcotest.int64 "same-line neighbour flushed too" 2L (Nvm.load_u64 d 8)

let test_eviction_leaks_dirty_lines () =
  let d = device ~size:65536 () in
  for i = 0 to 99 do
    Nvm.store_u64 d (i * 64) (Int64.of_int i)
  done;
  let rng = Rng.create 5 in
  Nvm.crash ~evict_fraction:1.0 ~rng d;
  (* With fraction 1.0 every dirty line survives the crash. *)
  for i = 0 to 99 do
    check Alcotest.int64 "leaked line content" (Int64.of_int i) (Nvm.load_u64 d (i * 64))
  done

let test_eviction_fraction_zero () =
  let d = device ~size:65536 () in
  for i = 0 to 99 do
    Nvm.store_u64 d (i * 64) 5L
  done;
  Nvm.crash ~evict_fraction:0.0 ~rng:(Rng.create 1) d;
  for i = 0 to 99 do
    check Alcotest.int64 "nothing leaks at fraction 0" 0L (Nvm.load_u64 d (i * 64))
  done

let test_write_bytes_accounting () =
  let d = device () in
  Nvm.store_u64 d 0 1L;
  Nvm.store_u64 d 8 2L;
  Nvm.persist d ~off:0 ~len:16;
  (* Byte-level accounting: 16 payload bytes, not a whole 64-byte line. *)
  check Alcotest.int "persisted payload bytes" 16 (Nvm.persisted_write_bytes d);
  check Alcotest.int "one persist ordering" 1 (Nvm.persist_ops d)

let test_store_bytes_roundtrip () =
  let d = device () in
  let b = Bytes.of_string "hello persistent world" in
  Nvm.store_bytes d 100 b;
  check Alcotest.bytes "load_bytes roundtrip" b (Nvm.load_bytes d 100 (Bytes.length b));
  Nvm.persist d ~off:100 ~len:(Bytes.length b);
  check Alcotest.bool "persisted image matches" true (Nvm.persisted_bytes_equal d 100 b)

let test_persist_ranges_single_ordering () =
  let d = device ~size:65536 () in
  Nvm.store_u64 d 0 1L;
  Nvm.store_u64 d 4096 2L;
  Nvm.store_u64 d 8192 3L;
  Nvm.persist_ranges d [ (0, 8); (4096, 8); (8192, 8) ];
  check Alcotest.int "one ordering for the batch" 1 (Nvm.persist_ops d);
  Nvm.crash d;
  check Alcotest.int64 "batch all persisted (1)" 1L (Nvm.load_u64 d 0);
  check Alcotest.int64 "batch all persisted (2)" 2L (Nvm.load_u64 d 4096);
  check Alcotest.int64 "batch all persisted (3)" 3L (Nvm.load_u64 d 8192)

let test_double_crash_idempotent () =
  let d = device () in
  Nvm.store_u64 d 0 9L;
  Nvm.persist d ~off:0 ~len:8;
  Nvm.crash d;
  Nvm.crash d;
  check Alcotest.int64 "state stable across repeated crashes" 9L (Nvm.load_u64 d 0)

let test_dirty_lines_tracking () =
  let d = device () in
  check Alcotest.int "clean initially" 0 (Nvm.dirty_lines d);
  Nvm.store_u64 d 0 1L;
  Nvm.store_u64 d 8 1L (* same line *);
  Nvm.store_u64 d 64 1L;
  check Alcotest.int "two dirty lines" 2 (Nvm.dirty_lines d);
  Nvm.persist_all d;
  check Alcotest.int "clean after persist_all" 0 (Nvm.dirty_lines d)

(* ---------------------------- media faults ---------------------------- *)

let test_bit_rot () =
  let d = device () in
  Nvm.store_u64 d 0 0L;
  Nvm.persist d ~off:0 ~len:8;
  Nvm.inject_fault d (Nvm.Bit_rot { off = 0; bit = 3 });
  check Alcotest.int64 "persisted bit flipped" 8L (Nvm.persisted_u64 d 0);
  check Alcotest.int64 "clean cached line mirrors the media" 8L (Nvm.load_u64 d 0);
  check Alcotest.int "injection counted" 1 (Nvm.media_faults_injected d)

let test_bit_rot_shadowed_by_dirty_line () =
  let d = device () in
  Nvm.store_u64 d 0 5L (* line dirty: the cache shadows the media *);
  Nvm.inject_fault d (Nvm.Bit_rot { off = 0; bit = 0 });
  check Alcotest.int64 "dirty line shadows media rot" 5L (Nvm.load_u64 d 0);
  Nvm.persist d ~off:0 ~len:8;
  check Alcotest.int64 "writeback overwrites the rotten byte" 5L (Nvm.persisted_u64 d 0)

let test_poison_raises_and_rewrite_repairs () =
  let d = device () in
  Nvm.store_u64 d 0 7L;
  Nvm.persist d ~off:0 ~len:8;
  Nvm.crash d (* every line clean: loads reach the media *);
  Nvm.inject_fault d (Nvm.Poison { line = 0 });
  check Alcotest.bool "is_poisoned" true (Nvm.is_poisoned d ~line:0);
  Alcotest.check_raises "clean-line load raises" (Nvm.Media_error 0) (fun () ->
      ignore (Nvm.load_u64 d 0));
  Alcotest.check_raises "persisted read raises" (Nvm.Media_error 0) (fun () ->
      ignore (Nvm.persisted_u64 d 0));
  (* Rewriting fresh data over the line clears the poison. *)
  Nvm.store_u64 d 0 9L;
  Nvm.persist d ~off:0 ~len:8;
  check Alcotest.bool "flush clears poison" false (Nvm.is_poisoned d ~line:0);
  check Alcotest.int64 "fresh data readable" 9L (Nvm.load_u64 d 0)

let test_poison_survives_crash () =
  let d = device () in
  Nvm.inject_fault d (Nvm.Poison { line = 2 });
  Nvm.crash d;
  check Alcotest.bool "poison survives crash" true (Nvm.is_poisoned d ~line:2);
  check Alcotest.(list int) "poisoned_lines" [ 2 ] (Nvm.poisoned_lines d)

let test_stuck_line_drops_writes () =
  let d = device () in
  Nvm.store_u64 d 64 1L;
  Nvm.persist d ~off:64 ~len:8;
  Nvm.inject_fault d (Nvm.Stuck_line { line = 1 });
  Nvm.store_u64 d 64 2L;
  Nvm.persist d ~off:64 ~len:8;
  check Alcotest.int64 "writeback dropped by stuck line" 1L (Nvm.persisted_u64 d 64);
  check Alcotest.int64 "cached copy reverts on flush (read-after-writeback)" 1L
    (Nvm.load_u64 d 64);
  Nvm.crash d;
  check Alcotest.bool "stuck survives crash" true (Nvm.is_stuck d ~line:1);
  check Alcotest.(list int) "stuck_lines" [ 1 ] (Nvm.stuck_lines d)

let test_background_decay () =
  let d = device ~size:65536 () in
  for i = 0 to 1023 do
    Nvm.store_u64 d (i * 64) 1L
  done;
  Nvm.persist_all d;
  Nvm.set_decay d (Some (0.25, 1_000, 42));
  let before = Nvm.media_faults_injected d in
  Nvm.decay_tick d;
  check Alcotest.bool "decay injects seeded faults" true
    (Nvm.media_faults_injected d > before);
  Nvm.set_decay d None;
  let stable = Nvm.media_faults_injected d in
  Nvm.decay_tick d;
  check Alcotest.int "decay off injects nothing" stable (Nvm.media_faults_injected d)

let test_crash_survivors_recorded () =
  let d = device ~size:65536 () in
  Nvm.store_u64 d 0 1L;
  Nvm.store_u64 d 640 2L;
  Nvm.crash ~evict_fraction:1.0 ~rng:(Rng.create 3) d;
  check Alcotest.(list int) "every dirty line recorded as survivor" [ 0; 10 ]
    (Nvm.last_crash_survivors d);
  Nvm.store_u64 d 128 3L;
  Nvm.crash d;
  check Alcotest.(list int) "fraction-0 crash leaks nothing" [] (Nvm.last_crash_survivors d)

let test_mem_alignment () =
  let m = Mem.create 64 in
  Alcotest.check_raises "unaligned u64 access rejected"
    (Invalid_argument "Mem: unaligned 64-bit access at 0x3") (fun () ->
      ignore (Mem.get_u64 m 3))

let prop_persist_crash_prefix =
  (* Any interleaving of stores/persists followed by a crash leaves the
     persisted image equal to replaying only the persisted prefix. *)
  QCheck2.Test.make ~name:"nvm: crash preserves exactly the persisted stores" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (tup3 (int_range 0 63) (int_range 0 1000) bool))
    (fun ops ->
      let d = device ~size:4096 () in
      let model = Array.make 64 0L in
      let dirty_model = Array.make 64 0L in
      List.iter
        (fun (word, v, do_persist) ->
          let v = Int64.of_int v in
          Nvm.store_u64 d (word * 8) v;
          dirty_model.(word) <- v;
          if do_persist then begin
            (* Persisting a word flushes its whole 64-byte line: words
               word/8*8 .. word/8*8+7. *)
            Nvm.persist d ~off:(word * 8) ~len:8;
            let base = word / 8 * 8 in
            for w = base to base + 7 do
              model.(w) <- dirty_model.(w)
            done
          end)
        ops;
      Nvm.crash d;
      Array.for_all
        (fun w -> Nvm.load_u64 d (w * 8) = model.(w))
        (Array.init 64 (fun i -> i)))

let suite =
  [
    Alcotest.test_case "store/load" `Quick test_store_load;
    Alcotest.test_case "unpersisted data lost on crash" `Quick test_unpersisted_lost_on_crash;
    Alcotest.test_case "persisted data survives crash" `Quick test_persisted_survives_crash;
    Alcotest.test_case "persist is range-scoped" `Quick test_persist_is_range_scoped;
    Alcotest.test_case "flushes are line-granular" `Quick test_line_granularity;
    Alcotest.test_case "adversarial eviction leaks dirty lines" `Quick test_eviction_leaks_dirty_lines;
    Alcotest.test_case "eviction fraction 0 leaks nothing" `Quick test_eviction_fraction_zero;
    Alcotest.test_case "write-byte accounting" `Quick test_write_bytes_accounting;
    Alcotest.test_case "store_bytes roundtrip" `Quick test_store_bytes_roundtrip;
    Alcotest.test_case "persist_ranges is one ordering" `Quick test_persist_ranges_single_ordering;
    Alcotest.test_case "double crash idempotent" `Quick test_double_crash_idempotent;
    Alcotest.test_case "dirty line tracking" `Quick test_dirty_lines_tracking;
    Alcotest.test_case "bit rot flips persisted data" `Quick test_bit_rot;
    Alcotest.test_case "bit rot shadowed by dirty line" `Quick
      test_bit_rot_shadowed_by_dirty_line;
    Alcotest.test_case "poison raises; rewrite repairs" `Quick
      test_poison_raises_and_rewrite_repairs;
    Alcotest.test_case "poison survives crash" `Quick test_poison_survives_crash;
    Alcotest.test_case "stuck line drops writes" `Quick test_stuck_line_drops_writes;
    Alcotest.test_case "seeded background decay" `Quick test_background_decay;
    Alcotest.test_case "crash survivors recorded" `Quick test_crash_survivors_recorded;
    Alcotest.test_case "unaligned access rejected" `Quick test_mem_alignment;
    QCheck_alcotest.to_alcotest prop_persist_crash_prefix;
  ]

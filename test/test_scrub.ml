(* Offline media scrub: poison clearing, extent audit and repair from live
   log records, unrepairable-loss reporting, checkpoint-slot repair, and
   stuck-line remapping into the persistent bad-line table. *)

module Sched = Dudetm_sim.Sched
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module Checkpoint = Dudetm_core.Checkpoint
module Crcdir = Dudetm_core.Crcdir
module Badline = Dudetm_core.Badline
module Plog = Dudetm_log.Plog
module Log_entry = Dudetm_log.Log_entry
module Scrub = Dudetm_scrub.Scrub
module D = Dudetm_core.Dudetm.Make (Dudetm_tm.Tinystm)

let check = Alcotest.check

let scfg =
  {
    Config.default with
    Config.heap_size = 1 lsl 16;
    root_size = 4096;
    nthreads = 2;
    vlog_capacity = 256;
    plog_size = 1 lsl 13;
    meta_size = 8192;
    checkpoint_records = 2;
    seed = 7;
  }

(* Run a short counter workload to quiescence and cut power: a realistic
   crashed image with checkpoints, sealed CRC directory entries, and
   possibly still-live (unrecycled) log records. *)
let quiescent_image ?(txs = 10) () =
  let t = D.create scfg in
  ignore
    (Sched.run (fun () ->
         D.start t;
         let remaining = ref (scfg.Config.nthreads * txs) in
         for th = 0 to scfg.Config.nthreads - 1 do
           ignore
             (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                  for _ = 1 to txs do
                    ignore
                      (D.atomically t ~thread:th (fun tx ->
                           let c = D.read tx (D.root_base t) in
                           let c1 = Int64.add c 1L in
                           D.write tx (8 + (8 * (Int64.to_int c1 mod 8))) c1;
                           D.write tx (D.root_base t) c1));
                    decr remaining
                  done))
         done;
         Sched.wait_until ~label:"workload" (fun () -> !remaining = 0);
         D.drain t;
         D.stop t));
  Nvm.crash (D.nvm t);
  D.nvm t

let test_undamaged_image_nothing_lost () =
  let nvm = quiescent_image () in
  let r = Scrub.scrub scfg nvm in
  check Alcotest.bool "checkpoint intact" true (r.Scrub.ckpt <> `Fatal);
  check Alcotest.(list int) "no unreconstructible extents" [] r.Scrub.bad_extents;
  check Alcotest.int "no poison" 0 r.Scrub.poison_cleared;
  check Alcotest.int "no stuck lines" 0 r.Scrub.stuck_remapped;
  check Alcotest.int "no reformatted rings" 0 r.Scrub.rings_reformatted;
  check Alcotest.int "no ring corruption" 0 r.Scrub.ring_corrupted_records;
  check Alcotest.int "every extent audited"
    (scfg.Config.heap_size / scfg.Config.crc_extent)
    r.Scrub.extents_checked;
  (* Recovery after the scrub works and agrees with the image. *)
  let t2, report = D.attach scfg nvm in
  check Alcotest.int64 "counter equals recovered durable id"
    (Int64.of_int report.Dudetm_core.Dudetm.durable)
    (D.heap_read_u64 t2 (D.root_base t2))

let test_poison_cleared_and_counted () =
  let nvm = quiescent_image () in
  (* Line 100 (bytes 6400..6463) is untouched heap: zero, sealed as zero. *)
  Nvm.inject_fault nvm (Nvm.Poison { line = 100 });
  let before = Nvm.media_faults_repaired nvm in
  let r = Scrub.scrub scfg nvm in
  check Alcotest.int "poisoned line cleared" 1 r.Scrub.poison_cleared;
  check Alcotest.bool "poison gone from the device" false (Nvm.is_poisoned nvm ~line:100);
  check Alcotest.(list int) "zeroed content matches its sealed CRC" [] r.Scrub.bad_extents;
  check Alcotest.bool "not a clean report" false (Scrub.clean r);
  check Alcotest.bool "repair counted" true (Nvm.media_faults_repaired nvm > before)

let test_heap_rot_never_silent () =
  let nvm = quiescent_image () in
  (* Byte 12 sits in the live slot area of extent 0. *)
  Nvm.inject_fault nvm (Nvm.Bit_rot { off = 12; bit = 6 });
  let before = Nvm.media_faults_detected nvm in
  let r = Scrub.scrub scfg nvm in
  check Alcotest.bool "rot detected by the extent audit" true
    (r.Scrub.extents_repaired + List.length r.Scrub.bad_extents >= 1);
  check Alcotest.bool "not a clean report" false (Scrub.clean r);
  check Alcotest.bool "detection counted" true (Nvm.media_faults_detected nvm > before)

let test_repair_from_live_records () =
  (* Handcrafted detection window: a record is sealed and its write applied
     and persisted to home, but no checkpoint resealed the extent's CRC
     entry.  The entry legitimately mismatches; the still-live record
     re-covers the extent, so scrub replays it and reseals. *)
  let t = D.create scfg in
  let nvm = D.nvm t in
  let plog, _ =
    Plog.attach nvm ~base:(Config.plog_base scfg 0) ~size:scfg.Config.plog_size
  in
  let payload =
    Log_entry.encode_payload
      [ Log_entry.Write { addr = 512; value = 77L }; Log_entry.Tx_end { tid = 1 } ]
  in
  ignore (Plog.append plog payload);
  Nvm.store_u64 nvm 512 77L;
  Nvm.persist nvm ~off:512 ~len:8;
  Nvm.crash nvm;
  let r = Scrub.scrub scfg nvm in
  check Alcotest.int "stale extent resealed from the live record" 1 r.Scrub.extents_repaired;
  check Alcotest.(list int) "nothing unreconstructible" [] r.Scrub.bad_extents;
  check Alcotest.int64 "replayed value persisted" 77L (Nvm.persisted_u64 nvm 512);
  (* The audit invariant is restored: a second scrub is quiet. *)
  let r2 = Scrub.scrub scfg nvm in
  check Alcotest.int "second scrub repairs nothing" 0 r2.Scrub.extents_repaired

let test_unreconstructible_loss_reported () =
  (* Rot in an extent no live record covers: the checkpointed content is
     gone and the scrub must say so rather than reseal silently. *)
  let t = D.create scfg in
  let nvm = D.nvm t in
  Nvm.crash nvm;
  Nvm.inject_fault nvm (Nvm.Bit_rot { off = 3000; bit = 2 });
  let r = Scrub.scrub scfg nvm in
  check Alcotest.(list int) "lost extent reported" [ 3000 / scfg.Config.crc_extent ]
    r.Scrub.bad_extents;
  check Alcotest.int "nothing falsely repaired" 0 r.Scrub.extents_repaired;
  check Alcotest.bool "not a clean report" false (Scrub.clean r)

let test_checkpoint_slot_repaired () =
  let nvm = quiescent_image () in
  (* Destroy slot 0's CRC; the survivor in slot 1 rebuilds it. *)
  Nvm.inject_fault nvm (Nvm.Bit_rot { off = Config.meta_base scfg + 1; bit = 4 });
  let r = Scrub.scrub scfg nvm in
  check Alcotest.bool "slot repaired from survivor" true (r.Scrub.ckpt = `Repaired);
  (* Both slots validate again. *)
  let r2 = Scrub.scrub scfg nvm in
  check Alcotest.bool "checkpoint whole after repair" true (r2.Scrub.ckpt = `Ok)

let test_both_slots_lost_is_fatal () =
  let nvm = quiescent_image () in
  let slot = scfg.Config.meta_size / 2 in
  Nvm.inject_fault nvm (Nvm.Bit_rot { off = Config.meta_base scfg + 1; bit = 4 });
  Nvm.inject_fault nvm (Nvm.Bit_rot { off = Config.meta_base scfg + slot + 1; bit = 4 });
  let r = Scrub.scrub scfg nvm in
  check Alcotest.bool "double slot loss is fatal, loudly" true (r.Scrub.ckpt = `Fatal)

let test_stuck_line_remapped () =
  let nvm = quiescent_image () in
  Nvm.inject_fault nvm (Nvm.Stuck_line { line = 50 });
  let r = Scrub.scrub ~probe_stuck:true scfg nvm in
  check Alcotest.int "stuck line found by the probe sweep" 1 r.Scrub.stuck_remapped;
  check Alcotest.bool "table not full" false r.Scrub.badline_table_full;
  (* The remap is persistent: a fresh attach of the table sees it. *)
  let bl, intact = Badline.attach nvm scfg in
  check Alcotest.bool "bad-line table intact" true intact;
  check Alcotest.bool "line 50 recorded" true (Badline.mem bl 50);
  (* A second scrub does not re-report the already-remapped line. *)
  let r2 = Scrub.scrub ~probe_stuck:true scfg nvm in
  check Alcotest.int "already-remapped line not re-counted" 0 r2.Scrub.stuck_remapped

let test_report_only_mode () =
  let nvm = quiescent_image () in
  Nvm.inject_fault nvm (Nvm.Poison { line = 100 });
  let r = Scrub.scrub ~repair:false scfg nvm in
  check Alcotest.int "report-only clears nothing" 0 r.Scrub.poison_cleared;
  check Alcotest.bool "poison still present" true (Nvm.is_poisoned nvm ~line:100)

let suite =
  [
    Alcotest.test_case "undamaged image loses nothing" `Quick
      test_undamaged_image_nothing_lost;
    Alcotest.test_case "poison cleared and counted" `Quick test_poison_cleared_and_counted;
    Alcotest.test_case "heap rot never silent" `Quick test_heap_rot_never_silent;
    Alcotest.test_case "stale extent repaired from live records" `Quick
      test_repair_from_live_records;
    Alcotest.test_case "unreconstructible loss reported" `Quick
      test_unreconstructible_loss_reported;
    Alcotest.test_case "checkpoint slot repaired" `Quick test_checkpoint_slot_repaired;
    Alcotest.test_case "double checkpoint loss is fatal" `Quick test_both_slots_lost_is_fatal;
    Alcotest.test_case "stuck line remapped persistently" `Quick test_stuck_line_remapped;
    Alcotest.test_case "report-only mode" `Quick test_report_only_mode;
  ]

(* Differential oracle: the same seeded KV workload driven through DudeTM
   and through the volatile TinySTM upper bound must produce identical
   observable results — durability must never change what transactions
   compute.  And after a crash, the recovered state must be exactly the
   durable prefix of the committed history (prefix-consistent subset).

   The operation generator is deliberately reusable: [gen_ops] produces a
   seeded random op list for one thread over its own key range, and
   [observe] runs it on any Ptm system, returning the full observation
   stream.  Threads work disjoint key ranges, so each thread's observations
   are schedule-independent — which is what makes a cross-system diff
   meaningful even though DudeTM's daemon threads shift every scheduling
   decision point relative to the volatile run. *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module B = Dudetm_baselines
module W = Dudetm_workloads
module Ptm = B.Ptm_intf
module D = Dudetm_core.Dudetm.Make (Dudetm_tm.Tinystm)

let check = Alcotest.check

exception Crashed

(* ----------------------------- generator ------------------------------ *)

type op =
  | Lookup of int64
  | Lookup_ro of int64  (* snapshot fast path; durable-only for odd keys *)
  | Insert of int64 * int64
  | Update of int64 * int64

let gen_ops ~seed ~n ~key_lo ~key_hi =
  let rng = Rng.create seed in
  let key () = Int64.of_int (key_lo + Rng.int rng (key_hi - key_lo + 1)) in
  List.init n (fun _ ->
      match Rng.int rng 10 with
      | 0 | 1 -> Lookup (key ())
      | 2 | 3 -> Lookup_ro (key ())
      | 4 | 5 | 6 -> Insert (key (), Rng.next_int64 rng)
      | _ -> Update (key (), Rng.next_int64 rng))

(* Run one op transactionally and encode its observable outcome as an
   int64 (lookup result, or found/absent; insert/update success bit). *)
let observe (ptm : Ptm.t) kv ~thread op =
  let run tx_f =
    match ptm.Ptm.atomically ~thread tx_f with
    | Some (r, _tid) -> r
    | None -> Alcotest.fail "transaction user-aborted unexpectedly"
  in
  let run_ro ~durable tx_f =
    match ptm.Ptm.atomically_ro ~durable ~thread tx_f with
    | Some (r, _epoch) -> r
    | None -> Alcotest.fail "read-only transaction user-aborted unexpectedly"
  in
  match op with
  | Lookup k -> (
    match run (fun tx -> W.Kv.lookup_tx kv tx ~key:k) with
    | Some v -> v
    | None -> -1L)
  | Lookup_ro k -> (
    (* Threads write disjoint ranges, so even a durable-pinned snapshot of
       the thread's own key is schedule-independent: the pin only delays
       the read until the thread's latest write is durable. *)
    let durable = Int64.to_int k land 1 = 1 in
    match run_ro ~durable (fun tx -> W.Kv.lookup_tx kv tx ~key:k) with
    | Some v -> v
    | None -> -1L)
  | Insert (k, v) -> if run (fun tx -> W.Kv.insert_tx kv tx ~key:k ~value:v) then 1L else 0L
  | Update (k, v) -> if run (fun tx -> W.Kv.update_tx kv tx ~key:k ~value:v) then 1L else 0L

(* Run the full workload on one system: [nthreads] workers, disjoint key
   ranges, [ops_per_thread] seeded ops each, under the given schedule.
   Returns per-thread observation streams and the final table contents as
   seen through a transactional scan. *)
let run_system ?strategy ~nthreads ~ops_per_thread ~op_seed (ptm : Ptm.t) =
  let kv = ref None in
  let obs = Array.make nthreads [] in
  let done_ = Array.make nthreads false in
  ignore
    (Sched.run ?strategy (fun () ->
         ptm.Ptm.start ();
         let t = W.Kv.setup ptm W.Kv.Hash ~capacity:4096 in
         kv := Some t;
         for th = 0 to nthreads - 1 do
           ignore
             (Sched.spawn
                (Printf.sprintf "w%d" th)
                (fun () ->
                  let ops =
                    gen_ops ~seed:(op_seed + th) ~n:ops_per_thread ~key_lo:(1 + (th * 1000))
                      ~key_hi:((th * 1000) + 200)
                  in
                  obs.(th) <-
                    List.rev
                      (List.fold_left
                         (fun acc op ->
                           Sched.advance 30;
                           observe ptm t ~thread:th op :: acc)
                         [] ops);
                  done_.(th) <- true))
         done;
         Sched.wait_until ~label:"differential workers" (fun () ->
             Array.for_all Fun.id done_);
         ptm.Ptm.drain ();
         ptm.Ptm.stop ()));
  let kv = Option.get !kv in
  let final =
    List.concat
      (List.init nthreads (fun th ->
           List.filter_map
             (fun k ->
               let key = Int64.of_int k in
               Option.map (fun v -> (key, v)) (W.Kv.peek_lookup kv ~key))
             (List.init 201 (fun i -> 1 + (th * 1000) + i))))
  in
  (Array.to_list obs, final)

(* ------------------- DudeTM vs volatile, same seed -------------------- *)

let dude_cfg =
  {
    Config.default with
    Config.heap_size = 1 lsl 21;
    nthreads = 3;
    vlog_capacity = 4096;
    plog_size = 1 lsl 16;
  }

let systems () =
  [
    ("dudetm", fst (B.Dude_ptm.Stm.ptm dude_cfg));
    ("dudetm-sync", fst (B.Dude_ptm.Stm.ptm { dude_cfg with Config.mode = Config.Sync }));
    ("volatile", B.Volatile_stm.ptm ~heap_size:(1 lsl 21) ~nthreads:3 ());
  ]

let test_identical_observations () =
  List.iter
    (fun (op_seed, sched_seed) ->
      let strategy = Sched.random_priority ~seed:sched_seed in
      let results =
        List.map
          (fun (name, ptm) ->
            (name, run_system ~strategy ~nthreads:3 ~ops_per_thread:120 ~op_seed ptm))
          (systems ())
      in
      match results with
      | (_, (ref_obs, ref_final)) :: rest ->
        List.iter
          (fun (name, (obs, final)) ->
            List.iteri
              (fun th (got, want) ->
                check
                  (Alcotest.list Alcotest.int64)
                  (Printf.sprintf "seed (%d,%d) thread %d observations on %s" op_seed
                     sched_seed th name)
                  want got)
              (List.combine obs ref_obs);
            check
              (Alcotest.list (Alcotest.pair Alcotest.int64 Alcotest.int64))
              (Printf.sprintf "seed (%d,%d) final table on %s" op_seed sched_seed name)
              ref_final final)
          rest
      | [] -> assert false)
    [ (500, 1); (501, 2); (502, 3) ]

(* ------------------ crash recovery: durable prefix -------------------- *)

(* Root-area address where the table descriptor is persisted so the
   recovered instance can re-open it (the allocator starts at root_size). *)
let desc_addr = 16

let test_crash_recovery_prefix () =
  List.iter
    (fun (seed, crash_cycles, evict) ->
      let ptm, d = B.Dude_ptm.Stm.ptm dude_cfg in
      (* (tid, key, value) for every committed write, all threads. *)
      let writes = ref [] in
      (try
         ignore
           (Sched.run (fun () ->
                ptm.Ptm.start ();
                let kv = W.Kv.setup ~desc:desc_addr ptm W.Kv.Hash ~capacity:1024 in
                (* Let setup become durable before the workload so the
                   crash can never land inside table construction. *)
                Sched.wait_until ~label:"setup durable" (fun () ->
                    ptm.Ptm.durable_id () >= ptm.Ptm.last_tid ());
                for th = 0 to dude_cfg.Config.nthreads - 1 do
                  ignore
                    (Sched.spawn
                       (Printf.sprintf "w%d" th)
                       (fun () ->
                         let rng = Rng.create (seed + th) in
                         while true do
                           let key = Int64.of_int (1 + (th * 500) + Rng.int rng 100) in
                           let value = Rng.next_int64 rng in
                           (match
                              ptm.Ptm.atomically ~thread:th (fun tx ->
                                  if Rng.bool rng then W.Kv.insert_tx kv tx ~key ~value
                                  else W.Kv.update_tx kv tx ~key ~value)
                            with
                           | Some (true, tid) -> writes := (tid, key, value) :: !writes
                           | Some (false, _) | None -> ());
                           Sched.advance 40
                         done))
                done;
                Sched.advance crash_cycles;
                raise Crashed))
       with Crashed -> ());
      Nvm.crash ~evict_fraction:evict ~rng:(Rng.create seed) (D.nvm d);
      let ptm2, _, report = B.Dude_ptm.Stm.attach_ptm dude_cfg (D.nvm d) in
      let durable = report.Dudetm_core.Dudetm.durable in
      check Alcotest.bool "some transactions were durable" true (durable > 0);
      check Alcotest.bool "some commits were still in flight" true
        (List.exists (fun (tid, _, _) -> tid > durable) !writes);
      (* Model: last committed write per key within the durable prefix. *)
      let model = Hashtbl.create 64 in
      List.iter
        (fun (tid, key, value) ->
          if tid <= durable then
            match Hashtbl.find_opt model key with
            | Some (tid0, _) when tid0 > tid -> ()
            | _ -> Hashtbl.replace model key (tid, value))
        !writes;
      let kv2 = W.Kv.attach ~desc:desc_addr ptm2 W.Kv.Hash in
      let keys =
        List.sort_uniq compare (List.map (fun (_, k, _) -> k) !writes)
      in
      List.iter
        (fun key ->
          let expected = Option.map snd (Hashtbl.find_opt model key) in
          let got = W.Kv.peek_lookup kv2 ~key in
          if got <> expected then
            Alcotest.failf
              "seed %d: key %Ld recovered to %s, durable prefix says %s (durable=%d)" seed
              key
              (match got with Some v -> Int64.to_string v | None -> "absent")
              (match expected with Some v -> Int64.to_string v | None -> "absent")
              durable)
        keys)
    [ (700, 400_000, 0.4); (701, 650_000, 0.7); (702, 900_000, 0.0) ]

let suite =
  [
    Alcotest.test_case "identical observations across systems" `Slow
      test_identical_observations;
    Alcotest.test_case "recovered state is the durable prefix" `Slow
      test_crash_recovery_prefix;
  ]

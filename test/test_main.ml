let () =
  Alcotest.run "dudetm"
    [
      ("sim", Test_sim.suite);
      ("nvm", Test_nvm.suite);
      ("log", Test_log.suite);
      ("lz", Test_lz.suite);
      ("plog", Test_plog.suite);
      ("tm", Test_tm.suite);
      ("shadow", Test_shadow.suite);
      ("alloc", Test_alloc.suite);
      ("dudetm", Test_dudetm.suite);
      ("engine-edge", Test_engine_edge.suite);
      ("baselines", Test_baselines.suite);
      ("workloads", Test_workloads.suite);
      ("kv", Test_kv.suite);
      ("check", Test_check.suite);
      ("scrub", Test_scrub.suite);
      ("media", Test_media.suite);
      ("recovery", Test_recovery.suite);
      ("trace", Test_trace.suite);
      ("batch", Test_batch.suite);
      ("shard", Test_shard.suite);
      ("partition", Test_partition.suite);
      ("migrate", Test_migrate.suite);
      ("differential", Test_differential.suite);
      ("replica", Test_replica.suite);
      ("snapshot", Test_snapshot.suite);
      ("serve", Test_serve.suite);
    ]

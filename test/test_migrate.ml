(* Live-migration coordinator tests: clean end-to-end bucket handoff
   (ownership flip, epoch bump, value preservation, source zeroing), a
   Copy-phase crash rolling back, roll-forward idempotence (re-attaching
   the same sealed handoff record twice ≡ once), and attach-time
   descriptor validation (corrupt CRC, shard-count mismatch) raising the
   typed [Invalid_partition] error. *)

module Sched = Dudetm_sim.Sched
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module Partition = Dudetm_workloads.Partition
module Handoff = Dudetm_shard.Handoff
module Mig = Dudetm_shard.Migrate.Make (Dudetm_tm.Tinystm)
module Sh = Mig.Sh

let check = Alcotest.check

let nshards = 4

(* 8 dense keys over 4 equal-width buckets: bucket b owns keys 2b, 2b+1. *)
let nkeys = 8

let slot_of k = 8 * k

let initial_owners () = [| 0; 1; 2; 3 |]

let part0 () =
  Partition.buckets ~nshards ~lo:0L ~hi:(Int64.of_int nkeys) ~owners:(initial_owners ())

let cfg =
  {
    Config.default with
    Config.heap_size = 1 lsl 16;
    root_size = 4096;
    nthreads = 2;
    vlog_capacity = 256;
    plog_size = 1 lsl 14;
    meta_size = 8192;
    checkpoint_records = 2;
    seed = 11;
  }

let fresh () =
  let sh = Sh.create ~nshards cfg in
  (sh, Mig.create sh ~part:(part0 ()) ~nkeys ~slot_of)

(* Seed key k to the value k+1 by k+1 routed increments. *)
let seed mig =
  for k = 0 to nkeys - 1 do
    for _ = 1 to k + 1 do
      match Mig.apply mig ~thread:0 ~key:k (fun v -> Int64.add v 1L) with
      | Some _ -> ()
      | None -> Alcotest.failf "seeding key %d aborted" k
    done
  done

let devices sh = Array.init nshards (Sh.nvm sh)

let heap_word sh shard k = Sh.Engine.heap_read_u64 (Sh.engine sh shard) (slot_of k)

(* --------------------------- clean migration ----------------------------- *)

let test_clean_migration () =
  let sh, mig = fresh () in
  ignore
    (Sched.run (fun () ->
         Sh.start sh;
         seed mig;
         Mig.migrate mig ~thread:0 ~src:1 ~dst:3 ~blo:1 ~bhi:2;
         check Alcotest.int "bucket 1 now owned by shard 3" 3
           (Partition.owners (Mig.partition mig)).(1);
         check Alcotest.int "descriptor epoch bumped" 2 (Mig.epoch mig);
         check Alcotest.bool "no migration in flight" true (Mig.migrating mig = None);
         for k = 0 to nkeys - 1 do
           check Alcotest.int
             (Printf.sprintf "key %d readable after the handoff" k)
             (k + 1)
             (Int64.to_int (Mig.read_key mig ~thread:0 k))
         done;
         Sh.drain sh;
         Sh.stop sh));
  (* Moved values live on the destination heap; the source slots are
     zeroed — no unreachable extents. *)
  check Alcotest.int "key 2 on destination heap" 3 (Int64.to_int (heap_word sh 3 2));
  check Alcotest.int "key 3 on destination heap" 4 (Int64.to_int (heap_word sh 3 3));
  check Alcotest.int "key 2 zeroed on source" 0 (Int64.to_int (heap_word sh 1 2));
  check Alcotest.int "key 3 zeroed on source" 0 (Int64.to_int (heap_word sh 1 3))

(* ----------------------- Copy-phase crash: rollback ----------------------- *)

let test_copy_crash_rolls_back () =
  let sh, mig = fresh () in
  ignore
    (Sched.run (fun () ->
         Sh.start sh;
         seed mig;
         Mig.begin_migration mig ~src:1 ~dst:3 ~blo:1 ~bhi:2;
         (* Ship part of the range, then die before the flip. *)
         ignore (Mig.copy_step ~chunk:1 mig ~thread:0);
         Sh.drain sh));
  Array.iter Nvm.crash (devices sh);
  let sh2, _ = Sh.attach ~nshards cfg (devices sh) in
  let mig2, resume = Mig.attach sh2 ~nkeys ~slot_of in
  (match resume with
  | Mig.Rolled_back pl ->
    check Alcotest.int "rolled-back plan src" 1 pl.Handoff.src;
    check Alcotest.int "rolled-back plan dst" 3 pl.Handoff.dst
  | Mig.Clean -> Alcotest.fail "Copy record lost: attach reported Clean"
  | Mig.Resumed _ -> Alcotest.fail "Copy record must roll back, not forward");
  check Alcotest.bool "ownership unchanged after rollback" true
    (Partition.owners (Mig.partition mig2) = initial_owners ());
  check Alcotest.int "epoch unchanged after rollback" 1 (Mig.epoch mig2);
  (* The rollback sealed Idle, so a second attach finds nothing to do. *)
  Array.iter Nvm.crash (devices sh);
  let sh3, _ = Sh.attach ~nshards cfg (devices sh) in
  let mig3, resume2 = Mig.attach sh3 ~nkeys ~slot_of in
  check Alcotest.bool "second attach is clean" true (resume2 = Mig.Clean);
  ignore
    (Sched.run (fun () ->
         Sh.start sh3;
         for k = 0 to nkeys - 1 do
           check Alcotest.int
             (Printf.sprintf "key %d survived the rollback" k)
             (k + 1)
             (Int64.to_int (Mig.read_key mig3 ~thread:0 k))
         done;
         Sh.drain sh3;
         Sh.stop sh3))

(* ------------- roll-forward idempotence: same record twice --------------- *)

let test_sealed_record_applied_twice () =
  let sh, mig = fresh () in
  ignore
    (Sched.run (fun () ->
         Sh.start sh;
         seed mig;
         Mig.begin_migration mig ~src:1 ~dst:3 ~blo:1 ~bhi:2;
         while not (Mig.copy_step mig ~thread:0) do
           ()
         done;
         (* Flip seals Flip + descriptor + Cleanup, then we die with the
            cleanup still pending. *)
         Mig.flip mig;
         Sh.drain sh));
  Array.iter Nvm.crash (devices sh);
  (* First replay of the sealed record. *)
  let sh2, _ = Sh.attach ~nshards cfg (devices sh) in
  let _mig2, resume1 = Mig.attach sh2 ~nkeys ~slot_of in
  let plan1 =
    match resume1 with
    | Mig.Resumed pl -> pl
    | Mig.Clean -> Alcotest.fail "sealed handoff lost: attach reported Clean"
    | Mig.Rolled_back _ -> Alcotest.fail "post-flip record must roll forward"
  in
  (* Crash again with zero progress: the identical record replays again
     and must land in the identical state. *)
  Array.iter Nvm.crash (devices sh);
  let sh3, _ = Sh.attach ~nshards cfg (devices sh) in
  let mig3, resume2 = Mig.attach sh3 ~nkeys ~slot_of in
  (match resume2 with
  | Mig.Resumed pl ->
    check Alcotest.bool "identical plan on the second replay" true (pl = plan1)
  | _ -> Alcotest.fail "second replay of the sealed record diverged");
  check Alcotest.int "epoch identical across replays" 2 (Mig.epoch mig3);
  check Alcotest.int "ownership identical across replays" 3
    (Partition.owners (Mig.partition mig3)).(1);
  (* Finishing from the second replay gives exactly the single-application
     end state. *)
  ignore
    (Sched.run (fun () ->
         Sh.start sh3;
         while not (Mig.cleanup_step mig3 ~thread:0) do
           ()
         done;
         check Alcotest.bool "idle after resumed cleanup" true (Mig.migrating mig3 = None);
         for k = 0 to nkeys - 1 do
           check Alcotest.int
             (Printf.sprintf "key %d correct after twice-applied handoff" k)
             (k + 1)
             (Int64.to_int (Mig.read_key mig3 ~thread:0 k))
         done;
         Sh.drain sh3;
         Sh.stop sh3));
  check Alcotest.int "source zeroed exactly once" 0 (Int64.to_int (heap_word sh3 1 2));
  check Alcotest.int "destination holds the moved value" 3
    (Int64.to_int (heap_word sh3 3 2))

(* ------------------- attach-time descriptor validation ------------------- *)

let test_attach_validates_descriptor () =
  let sh, _mig = fresh () in
  ignore
    (Sched.run (fun () ->
         Sh.start sh;
         Sh.drain sh;
         Sh.stop sh));
  let dev0 = Sh.nvm sh 0 in
  let base = Config.hjournal_base cfg in
  (* Shard-count mismatch: the sealed descriptor names 4 shards. *)
  (match Handoff.attach dev0 ~base ~nshards:(nshards + 1) with
  | _ -> Alcotest.fail "shard-count mismatch accepted"
  | exception Partition.Invalid_partition msg ->
    check Alcotest.bool "mismatch error names the counts" true
      (String.length msg > 0));
  (* Corrupt every slot of both records: no valid CRC survives, so attach
     must refuse with the typed error rather than invent a mapping. *)
  for w = 0 to (Config.hjournal_size cfg / 8) - 1 do
    Nvm.store_u64 dev0 (base + (8 * w)) 0x6b6f6b6f6b6f6b6fL
  done;
  Nvm.persist dev0 ~off:base ~len:(Config.hjournal_size cfg);
  (match Handoff.attach dev0 ~base ~nshards with
  | _ -> Alcotest.fail "corrupt descriptor accepted"
  | exception Partition.Invalid_partition _ -> ());
  let sh2, _ = Sh.attach ~nshards cfg (devices sh) in
  match Mig.attach sh2 ~nkeys ~slot_of with
  | _ -> Alcotest.fail "Migrate.attach accepted a corrupt descriptor"
  | exception Partition.Invalid_partition _ -> ()

let suite =
  [
    Alcotest.test_case "migrate: clean bucket handoff end to end" `Quick
      test_clean_migration;
    Alcotest.test_case "migrate: Copy-phase crash rolls back" `Quick
      test_copy_crash_rolls_back;
    Alcotest.test_case "migrate: sealed record applied twice = once" `Quick
      test_sealed_record_applied_twice;
    Alcotest.test_case "migrate: attach validates the descriptor" `Quick
      test_attach_validates_descriptor;
  ]

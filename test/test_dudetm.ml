(* DudeTM engine tests: the decoupled pipeline, durability protocol,
   allocation, crash consistency and recovery — including randomized
   crash-point injection with adversarial cache evictions. *)

module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Stats = Dudetm_sim.Stats
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module D = Dudetm_core.Dudetm.Make (Dudetm_tm.Tinystm)
module Dh = Dudetm_core.Dudetm.Make (Dudetm_tm.Htm)

let check = Alcotest.check

exception Crashed

let small_cfg ?(nthreads = 3) ?(mode = Config.Async) ?(vlog_capacity = 512)
    ?(plog_size = 1 lsl 14) ?(combine = false) ?(compress = false) ?(group_size = 1)
    ?shadow_frames () =
  {
    Config.default with
    Config.heap_size = 1 lsl 20;
    nthreads;
    mode;
    vlog_capacity;
    plog_size;
    combine;
    compress;
    group_size;
    shadow_frames;
  }

(* Counter workload: every transaction increments word 0 and stamps slot
   [counter mod slots] — recovery invariants are checkable from the
   counter value alone. *)
let counter_slots = 200

let counter_tx t thread =
  ignore
    (D.atomically t ~thread (fun tx ->
         let c = D.read tx (D.root_base t) in
         let c1 = Int64.add c 1L in
         D.write tx (8 + (8 * (Int64.to_int c1 mod counter_slots))) c1;
         D.write tx (D.root_base t) c1))

let expected_slot ~durable i =
  (* Largest k <= durable with k mod counter_slots = i, or 0. *)
  if durable <= 0 then 0L
  else begin
    let m = ((durable - i) / counter_slots * counter_slots) + i in
    let m = if m > durable then m - counter_slots else m in
    if m >= 1 then Int64.of_int m else 0L
  end

let run_counter_workload ?(cfg = small_cfg ()) ~txs_per_thread () =
  let t = D.create cfg in
  ignore
    (Sched.run (fun () ->
         D.start t;
         let remaining = ref (cfg.Config.nthreads * txs_per_thread) in
         for th = 0 to cfg.Config.nthreads - 1 do
           ignore
             (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                  for _ = 1 to txs_per_thread do
                    counter_tx t th;
                    decr remaining
                  done))
         done;
         Sched.wait_until ~label:"workload" (fun () -> !remaining = 0);
         D.drain t;
         D.stop t));
  t

let test_pipeline_completes () =
  let t = run_counter_workload ~txs_per_thread:100 () in
  check Alcotest.int64 "counter equals committed txs" 300L (D.heap_read_u64 t (D.root_base t));
  check Alcotest.int "all durable" 300 (D.durable_id t);
  check Alcotest.int "all applied" 300 (D.applied_id t);
  check Alcotest.int64 "data persisted in NVM" 300L (Nvm.persisted_u64 (D.nvm t) 0)

let test_durable_monotone_contiguous () =
  let cfg = small_cfg () in
  let t = D.create cfg in
  let violations = ref 0 in
  ignore
    (Sched.run (fun () ->
         D.start t;
         let remaining = ref 150 in
         for th = 0 to 2 do
           ignore
             (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                  for _ = 1 to 50 do
                    counter_tx t th;
                    decr remaining
                  done))
         done;
         ignore
           (Sched.spawn ~daemon:true "monitor" (fun () ->
                let last = ref 0 in
                while true do
                  let d = D.durable_id t in
                  if d < !last then incr violations;
                  if d > D.last_tid t then incr violations;
                  last := d;
                  Sched.advance 50
                done));
         Sched.wait_until ~label:"done" (fun () -> !remaining = 0);
         D.drain t;
         D.stop t));
  check Alcotest.int "durable id monotone and bounded by last tid" 0 !violations

let test_sync_mode_durable_at_return () =
  let cfg = small_cfg ~mode:Config.Sync () in
  let t = D.create cfg in
  ignore
    (Sched.run (fun () ->
         D.start t;
         let remaining = ref 60 in
         for th = 0 to 2 do
           ignore
             (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                  for _ = 1 to 20 do
                    (match
                       D.atomically t ~thread:th (fun tx ->
                           let c = D.read tx 0 in
                           D.write tx 0 (Int64.add c 1L))
                     with
                    | Some (_, tid) ->
                      if D.durable_id t < tid then
                        Alcotest.fail "Sync transaction returned before durable"
                    | None -> Alcotest.fail "unexpected abort");
                    decr remaining
                  done))
         done;
         Sched.wait_until ~label:"done" (fun () -> !remaining = 0);
         D.drain t;
         D.stop t));
  check Alcotest.int "all durable" 60 (D.durable_id t)

let test_inf_mode_never_blocks_producer () =
  let cfg = small_cfg ~mode:Config.Inf ~vlog_capacity:16 () in
  let t = run_counter_workload ~cfg ~txs_per_thread:100 () in
  check Alcotest.int "unbounded buffers never block" 0 (D.vlog_producer_blocks t)

let test_user_abort_no_side_effects () =
  let cfg = small_cfg () in
  let t = D.create cfg in
  let off1 = ref 0 in
  ignore
    (Sched.run (fun () ->
         D.start t;
         (match
            D.atomically t ~thread:0 (fun tx ->
                D.write tx 0 5L;
                ignore (D.pmalloc tx 64);
                D.abort tx)
          with
         | None -> ()
         | Some _ -> Alcotest.fail "abort should return None");
         check Alcotest.int64 "aborted write invisible" 0L (D.heap_read_u64 t 0);
         check Alcotest.int "no transaction committed" 0 (D.last_tid t);
         (* The aborted pmalloc was refunded: the next allocation gets the
            same offset... *)
         (match D.atomically t ~thread:0 (fun tx -> D.pmalloc tx 64) with
         | Some (o, _) -> off1 := o
         | None -> assert false);
         D.drain t;
         D.stop t));
  (* ...which is the offset a fresh instance would hand out first. *)
  let t2 = D.create cfg in
  let off2 = ref 0 in
  ignore
    (Sched.run (fun () ->
         D.start t2;
         (match D.atomically t2 ~thread:0 (fun tx -> D.pmalloc tx 64) with
         | Some (o, _) -> off2 := o
         | None -> assert false);
         D.drain t2;
         D.stop t2));
  check Alcotest.int "refunded allocation reused" !off2 !off1

let test_pmalloc_pfree_recycles () =
  let cfg = small_cfg () in
  let t = D.create cfg in
  ignore
    (Sched.run (fun () ->
         D.start t;
         let off =
           match D.atomically t ~thread:0 (fun tx -> D.pmalloc tx 128) with
           | Some (o, _) -> o
           | None -> assert false
         in
         (match D.atomically t ~thread:0 (fun tx -> D.pfree tx ~off ~len:128) with
         | Some _ -> ()
         | None -> assert false);
         (match D.atomically t ~thread:0 (fun tx -> D.pmalloc tx 128) with
         | Some (o, _) -> check Alcotest.int "freed block recycled" off o
         | None -> assert false);
         D.drain t;
         D.stop t))

let test_pmem_exhausted () =
  let cfg = small_cfg () in
  let t = D.create cfg in
  ignore
    (Sched.run (fun () ->
         D.start t;
         match
           D.atomically t ~thread:0 (fun tx -> ignore (D.pmalloc tx (1 lsl 21)))
         with
        | _ -> Alcotest.fail "expected Pmem_exhausted"
        | exception Dudetm_core.Dudetm.Pmem_exhausted -> ()))

(* --------------------------- crash/recovery -------------------------- *)

let crash_at ~cfg ~cycles ~evict ~seed =
  let t = D.create cfg in
  (try
     ignore
       (Sched.run (fun () ->
            D.start t;
            for th = 0 to cfg.Config.nthreads - 1 do
              ignore
                (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                     while true do
                       counter_tx t th
                     done))
            done;
            Sched.advance cycles;
            raise Crashed))
   with Crashed -> ());
  Nvm.crash ~evict_fraction:evict ~rng:(Rng.create seed) (D.nvm t);
  let t2, report = D.attach cfg (D.nvm t) in
  (t, t2, report)

let verify_counter_state t2 (report : Dudetm_core.Dudetm.recovery_report) =
  let d = report.Dudetm_core.Dudetm.durable in
  let c = D.heap_read_u64 t2 (D.root_base t2) in
  if c <> Int64.of_int d then
    Alcotest.failf "counter %Ld but durable id %d (atomicity violated)" c d;
  for i = 0 to counter_slots - 1 do
    let v = D.heap_read_u64 t2 (8 + (8 * i)) in
    let e = expected_slot ~durable:d i in
    if v <> e then Alcotest.failf "slot %d: got %Ld, expected %Ld (durable %d)" i v e d
  done

let test_crash_recover_basic () =
  let cfg = small_cfg () in
  let _, t2, report = crash_at ~cfg ~cycles:120_000 ~evict:0.0 ~seed:1 in
  check Alcotest.bool "some transactions recovered" true (report.Dudetm_core.Dudetm.durable > 0);
  verify_counter_state t2 report

let test_crash_recover_continue () =
  (* After recovery, new transactions extend the recovered state and
     survive a second crash. *)
  let cfg = small_cfg () in
  let _, t2, report = crash_at ~cfg ~cycles:100_000 ~evict:0.3 ~seed:2 in
  verify_counter_state t2 report;
  let d = report.Dudetm_core.Dudetm.durable in
  ignore
    (Sched.run (fun () ->
         D.start t2;
         let remaining = ref 30 in
         for th = 0 to cfg.Config.nthreads - 1 do
           ignore
             (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                  for _ = 1 to 10 do
                    counter_tx t2 th;
                    decr remaining
                  done))
         done;
         Sched.wait_until ~label:"done" (fun () -> !remaining = 0);
         D.drain t2;
         D.stop t2));
  check Alcotest.int64 "counter extended past recovery point"
    (Int64.of_int (d + 30))
    (D.heap_read_u64 t2 (D.root_base t2));
  Nvm.crash (D.nvm t2);
  let t3, report3 = D.attach cfg (D.nvm t2) in
  check Alcotest.int "second recovery sees all txs" (d + 30) report3.Dudetm_core.Dudetm.durable;
  verify_counter_state t3 report3

let test_recovery_empty_instance () =
  let cfg = small_cfg () in
  let t = D.create cfg in
  Nvm.crash (D.nvm t);
  let t2, report = D.attach cfg (D.nvm t) in
  check Alcotest.int "nothing to recover" 0 report.Dudetm_core.Dudetm.durable;
  check Alcotest.int64 "heap empty" 0L (D.heap_read_u64 t2 0)

let prop_crash_consistency =
  QCheck2.Test.make ~name:"dudetm: crash consistency at random points (STM)" ~count:25
    QCheck2.Gen.(tup3 (int_range 500 600_000) (float_range 0.0 1.0) (int_range 0 10_000))
    (fun (cycles, evict, seed) ->
      let cfg = small_cfg () in
      let _, t2, report = crash_at ~cfg ~cycles ~evict ~seed in
      verify_counter_state t2 report;
      true)

let prop_crash_consistency_combined =
  QCheck2.Test.make ~name:"dudetm: crash consistency with combination+compression" ~count:15
    QCheck2.Gen.(tup3 (int_range 500 400_000) (float_range 0.0 1.0) (int_range 0 10_000))
    (fun (cycles, evict, seed) ->
      let cfg =
        small_cfg ~combine:true ~compress:true ~group_size:8 ~plog_size:(1 lsl 16) ()
      in
      let _, t2, report = crash_at ~cfg ~cycles ~evict ~seed in
      verify_counter_state t2 report;
      true)

let prop_crash_consistency_paged =
  QCheck2.Test.make ~name:"dudetm: crash consistency with a paged shadow" ~count:10
    QCheck2.Gen.(tup3 (int_range 500 400_000) (float_range 0.0 1.0) (int_range 0 10_000))
    (fun (cycles, evict, seed) ->
      let cfg = small_cfg ~shadow_frames:16 () in
      let _, t2, report = crash_at ~cfg ~cycles ~evict ~seed in
      verify_counter_state t2 report;
      true)

let prop_crash_consistency_sync =
  QCheck2.Test.make ~name:"dudetm: crash consistency in Sync mode" ~count:10
    QCheck2.Gen.(tup3 (int_range 500 400_000) (float_range 0.0 1.0) (int_range 0 10_000))
    (fun (cycles, evict, seed) ->
      let cfg = small_cfg ~mode:Config.Sync () in
      let _, t2, report = crash_at ~cfg ~cycles ~evict ~seed in
      verify_counter_state t2 report;
      true)

(* Torn-tail recovery: crash, then corrupt the tail record of a chosen
   subset of the per-thread plog rings in the persisted image.  Recovery
   must discard exactly the torn suffix of each corrupted ring and land on
   the durable ID recomputed from the surviving records — never accept a
   torn record, never discard a valid one. *)
let crash_no_attach ~cfg ~cycles ~seed =
  let t = D.create cfg in
  (try
     ignore
       (Sched.run (fun () ->
            D.start t;
            for th = 0 to cfg.Config.nthreads - 1 do
              ignore
                (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                     while true do
                       counter_tx t th
                     done))
            done;
            Sched.advance cycles;
            raise Crashed))
   with Crashed -> ());
  Nvm.crash ~evict_fraction:0.0 ~rng:(Rng.create seed) (D.nvm t);
  t

let prop_torn_tail_recovery =
  QCheck2.Test.make
    ~name:"dudetm: torn plog tails discard exactly the torn suffix" ~count:20
    QCheck2.Gen.(tup3 (int_range 2_000 150_000) (int_range 0 10_000) (int_range 1 7))
    (fun (cycles, seed, mask) ->
      let cfg = small_cfg () in
      let t = crash_no_attach ~cfg ~cycles ~seed in
      let nvm = D.nvm t in
      let module IS = Set.Make (Int) in
      let surviving = ref IS.empty in
      let record_tids (r : Dudetm_log.Plog.record) =
        let p = r.Dudetm_log.Plog.payload in
        if Bytes.get p 0 <> 'P' then Alcotest.fail "unexpected payload flag";
        Dudetm_log.Log_entry.tids
          (Dudetm_log.Log_entry.decode_list (Bytes.sub p 1 (Bytes.length p - 1)))
      in
      let dcap = cfg.Config.plog_size - Dudetm_log.Plog.header_size in
      (* A record may only tear while its transactions are still waiting to
         be reproduced: once Reproduce has persisted a transaction's writes
         to their home locations, its record is durable history.  Corrupting
         such a record would fake a physically impossible crash, so bound
         the corruption by the largest tid with persisted home effects. *)
      let persisted_max = ref (Int64.to_int (Nvm.persisted_u64 nvm 0)) in
      for i = 0 to counter_slots - 1 do
        persisted_max :=
          max !persisted_max (Int64.to_int (Nvm.persisted_u64 nvm (8 + (8 * i))))
      done;
      for ring = 0 to Config.plog_regions cfg - 1 do
        let base = Config.plog_base cfg ring in
        let _, records = Dudetm_log.Plog.attach nvm ~base ~size:cfg.Config.plog_size in
        let corrupt = mask land (1 lsl ring) <> 0 in
        let rec keep = function
          | [] -> ()
          | [ last ]
            when corrupt
                 && List.for_all
                      (fun tid -> tid > !persisted_max)
                      (record_tids last) ->
            (* Flip the tail record's last payload byte in the persisted
               image: its CRC fails and recovery must treat it as torn. *)
            let off =
              base + Dudetm_log.Plog.header_size
              + ((last.Dudetm_log.Plog.end_off - 1) mod dcap)
            in
            Nvm.store_u8 nvm off (Nvm.load_u8 nvm off lxor 0xff);
            Nvm.persist nvm ~off ~len:1
          | r :: rest ->
            List.iter (fun tid -> surviving := IS.add tid !surviving) (record_tids r);
            keep rest
        in
        keep records
      done;
      let _, st =
        Dudetm_core.Checkpoint.attach nvm ~base:(Config.meta_base cfg)
          ~size:cfg.Config.meta_size
      in
      let c = st.Dudetm_core.Checkpoint.reproduced_upto in
      let rec ext d = if IS.mem (d + 1) !surviving then ext (d + 1) else d in
      let expected = ext c in
      let t2, report = D.attach cfg nvm in
      if report.Dudetm_core.Dudetm.durable <> expected then
        Alcotest.failf
          "recovered durable %d, expected %d after torn tails (mask %d, checkpoint %d)"
          report.Dudetm_core.Dudetm.durable expected mask c;
      verify_counter_state t2 report;
      true)

let test_acknowledged_txs_survive () =
  (* Durability acknowledgement is binding: any tid at or below the
     durable ID observed before the crash must survive it. *)
  let cfg = small_cfg () in
  let t = D.create cfg in
  let acked = ref 0 in
  (try
     ignore
       (Sched.run (fun () ->
            D.start t;
            for th = 0 to cfg.Config.nthreads - 1 do
              ignore
                (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                     while true do
                       counter_tx t th;
                       acked := max !acked (D.durable_id t)
                     done))
            done;
            Sched.advance 80_000;
            raise Crashed))
   with Crashed -> ());
  Nvm.crash ~evict_fraction:0.0 ~rng:(Rng.create 3) (D.nvm t);
  let _, report = D.attach cfg (D.nvm t) in
  check Alcotest.bool "acknowledged prefix survived" true
    (report.Dudetm_core.Dudetm.durable >= !acked)

let test_crash_with_allocations () =
  (* Linked-list append workload: every durable cell must be reachable and
     the allocator must not hand out overlapping blocks after recovery. *)
  let cfg = small_cfg ~nthreads:2 () in
  let t = D.create cfg in
  (try
     ignore
       (Sched.run (fun () ->
            D.start t;
            for th = 0 to 1 do
              ignore
                (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                     while true do
                       ignore
                         (D.atomically t ~thread:th (fun tx ->
                              let head = D.read tx (D.root_base t) in
                              let cell = D.pmalloc tx 16 in
                              D.write tx (cell + 8) head;
                              let n = D.read tx 8 in
                              D.write tx cell (Int64.add n 1L);
                              D.write tx 8 (Int64.add n 1L);
                              D.write tx (D.root_base t) (Int64.of_int cell)))
                     done))
            done;
            Sched.advance 150_000;
            raise Crashed))
   with Crashed -> ());
  Nvm.crash ~evict_fraction:0.4 ~rng:(Rng.create 9) (D.nvm t);
  let t2, _ = D.attach cfg (D.nvm t) in
  (* Walk the recovered list; cells hold distinct values n..1. *)
  let expected_len = Int64.to_int (D.heap_read_u64 t2 8) in
  let rec walk cell seen =
    if cell = 0 then seen
    else walk (Int64.to_int (D.heap_read_u64 t2 (cell + 8))) (seen + 1)
  in
  let len = walk (Int64.to_int (D.heap_read_u64 t2 (D.root_base t2))) 0 in
  check Alcotest.int "recovered list length matches durable counter" expected_len len;
  (* New allocations must not overlap recovered cells: append more and
     re-walk. *)
  ignore
    (Sched.run (fun () ->
         D.start t2;
         for _ = 1 to 20 do
           ignore
             (D.atomically t2 ~thread:0 (fun tx ->
                  let head = D.read tx (D.root_base t2) in
                  let cell = D.pmalloc tx 16 in
                  D.write tx (cell + 8) head;
                  let n = D.read tx 8 in
                  D.write tx cell (Int64.add n 1L);
                  D.write tx 8 (Int64.add n 1L);
                  D.write tx (D.root_base t2) (Int64.of_int cell)))
         done;
         D.drain t2;
         D.stop t2));
  let len2 = walk (Int64.to_int (D.heap_read_u64 t2 (D.root_base t2))) 0 in
  check Alcotest.int "list extended cleanly after recovery" (expected_len + 20) len2

let test_htm_backend_pipeline () =
  (* The same engine runs over the simulated HTM (out-of-the-box TM). *)
  let cfg = small_cfg () in
  let t = Dh.create cfg in
  ignore
    (Sched.run (fun () ->
         Dh.start t;
         let remaining = ref 150 in
         for th = 0 to 2 do
           ignore
             (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                  for _ = 1 to 50 do
                    ignore
                      (Dh.atomically t ~thread:th (fun tx ->
                           let c = Dh.read tx 0 in
                           Dh.write tx 0 (Int64.add c 1L)));
                    decr remaining
                  done))
         done;
         Sched.wait_until ~label:"done" (fun () -> !remaining = 0);
         Dh.drain t;
         Dh.stop t));
  check Alcotest.int64 "HTM-backed counter correct" 150L (Dh.heap_read_u64 t 0);
  check Alcotest.int64 "HTM-backed data persisted" 150L (Nvm.persisted_u64 (Dh.nvm t) 0)

let test_htm_crash_recovery () =
  let cfg = small_cfg () in
  let t = Dh.create cfg in
  (try
     ignore
       (Sched.run (fun () ->
            Dh.start t;
            for th = 0 to 2 do
              ignore
                (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                     while true do
                       ignore
                         (Dh.atomically t ~thread:th (fun tx ->
                              let c = Dh.read tx 0 in
                              Dh.write tx 0 (Int64.add c 1L)))
                     done))
            done;
            Sched.advance 90_000;
            raise Crashed))
   with Crashed -> ());
  Nvm.crash ~evict_fraction:0.5 ~rng:(Rng.create 6) (Dh.nvm t);
  let t2, report = Dh.attach cfg (Dh.nvm t) in
  check Alcotest.int64 "HTM recovery: counter equals durable id"
    (Int64.of_int report.Dudetm_core.Dudetm.durable)
    (Dh.heap_read_u64 t2 0)

let test_stats_populated () =
  let t = run_counter_workload ~txs_per_thread:50 () in
  let s = D.stats t in
  check Alcotest.int "txs counted" 150 (Stats.get s "txs");
  (* Two writes per committed transaction, plus entries from aborted
     attempts (appended, then popped). *)
  check Alcotest.bool "log entries cover all committed writes" true
    (Stats.get s "log_entries" >= 300);
  check Alcotest.bool "flush records created" true (Stats.get s "flush_records" > 0)

let suite =
  [
    Alcotest.test_case "pipeline completes and persists" `Quick test_pipeline_completes;
    Alcotest.test_case "durable id monotone and contiguous" `Quick
      test_durable_monotone_contiguous;
    Alcotest.test_case "Sync mode is durable at return" `Quick test_sync_mode_durable_at_return;
    Alcotest.test_case "Inf mode never blocks the producer" `Quick
      test_inf_mode_never_blocks_producer;
    Alcotest.test_case "user abort leaves no trace" `Quick test_user_abort_no_side_effects;
    Alcotest.test_case "pmalloc/pfree recycle blocks" `Quick test_pmalloc_pfree_recycles;
    Alcotest.test_case "pmalloc exhaustion raises" `Quick test_pmem_exhausted;
    Alcotest.test_case "crash and recover" `Quick test_crash_recover_basic;
    Alcotest.test_case "recover, continue, crash again" `Quick test_crash_recover_continue;
    Alcotest.test_case "recovery of an empty instance" `Quick test_recovery_empty_instance;
    QCheck_alcotest.to_alcotest prop_crash_consistency;
    QCheck_alcotest.to_alcotest prop_crash_consistency_combined;
    QCheck_alcotest.to_alcotest prop_crash_consistency_paged;
    QCheck_alcotest.to_alcotest prop_crash_consistency_sync;
    QCheck_alcotest.to_alcotest prop_torn_tail_recovery;
    Alcotest.test_case "acknowledged transactions survive" `Quick test_acknowledged_txs_survive;
    Alcotest.test_case "crash with allocations" `Quick test_crash_with_allocations;
    Alcotest.test_case "HTM backend pipeline" `Quick test_htm_backend_pipeline;
    Alcotest.test_case "HTM backend crash recovery" `Quick test_htm_crash_recovery;
    Alcotest.test_case "engine statistics" `Quick test_stats_populated;
  ]

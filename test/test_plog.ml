(* Persistent log ring: append/attach, torn records, stale-data rejection,
   wraparound, recycling. *)

module Plog = Dudetm_log.Plog
module Nvm = Dudetm_nvm.Nvm
module Pmem_config = Dudetm_nvm.Pmem_config
module Rng = Dudetm_sim.Rng

let check = Alcotest.check

let device () = Nvm.create ~charge_time:false Pmem_config.default ~size:65536

let payload s = Bytes.of_string s

let test_append_attach () =
  let nvm = device () in
  let t = Plog.format nvm ~base:0 ~size:4096 in
  let r1 = Plog.append t (payload "first") in
  let r2 = Plog.append t (payload "second") in
  check Alcotest.int "seq 0" 0 r1.Plog.seq;
  check Alcotest.int "seq 1" 1 r2.Plog.seq;
  Nvm.crash nvm;
  let _, records = Plog.attach nvm ~base:0 ~size:4096 in
  check Alcotest.int "both records survive" 2 (List.length records);
  check Alcotest.bytes "payload 1" (payload "first") (List.nth records 0).Plog.payload;
  check Alcotest.bytes "payload 2" (payload "second") (List.nth records 1).Plog.payload

let test_torn_record_discarded () =
  let nvm = device () in
  let t = Plog.format nvm ~base:0 ~size:4096 in
  ignore (Plog.append t (payload "good"));
  (* Write a record's bytes without persisting: only a random subset of its
     lines may survive the crash — a torn record. *)
  let start_tail = Plog.tail_off t in
  ignore start_tail;
  let frame = Bytes.make 40 'X' in
  Nvm.store_bytes nvm (64 + (Plog.tail_off t mod 4032)) frame;
  Nvm.crash ~evict_fraction:0.5 ~rng:(Rng.create 3) nvm;
  let _, records = Plog.attach nvm ~base:0 ~size:4096 in
  check Alcotest.int "only the sealed record survives" 1 (List.length records)

let test_stale_records_not_resurrected () =
  (* After recycling, old bytes remain in the ring; a re-attach must not
     mistake them for live records (sequence numbers prevent it). *)
  let nvm = device () in
  let t = Plog.format nvm ~base:0 ~size:4096 in
  let r1 = Plog.append t (payload "will be recycled") in
  let r2 = Plog.append t (payload "also recycled") in
  ignore r1;
  Plog.recycle_to t ~end_off:r2.Plog.end_off ~next_seq:2;
  Nvm.crash nvm;
  let t', records = Plog.attach nvm ~base:0 ~size:4096 in
  check Alcotest.int "no stale records" 0 (List.length records);
  check Alcotest.int "next seq continues" 2 (Plog.next_seq t')

let test_wraparound () =
  let nvm = device () in
  let t = Plog.format nvm ~base:0 ~size:512 in
  (* Repeatedly append and recycle so records straddle the ring boundary. *)
  for i = 0 to 30 do
    let p = payload (Printf.sprintf "record-%02d-%s" i (String.make 40 'p')) in
    let r = Plog.append t p in
    Plog.recycle_to t ~end_off:r.Plog.end_off ~next_seq:(r.Plog.seq + 1)
  done;
  let final = Plog.append t (payload "final") in
  Nvm.crash nvm;
  let _, records = Plog.attach nvm ~base:0 ~size:512 in
  check Alcotest.int "final record recovered after many wraps" 1 (List.length records);
  check Alcotest.int "final seq" final.Plog.seq (List.nth records 0).Plog.seq;
  check Alcotest.bytes "final payload" (payload "final") (List.nth records 0).Plog.payload

let test_free_space_accounting () =
  let nvm = device () in
  let t = Plog.format nvm ~base:0 ~size:1024 in
  let cap = Plog.data_capacity t in
  check Alcotest.int "initially empty" cap (Plog.free_space t);
  let r = Plog.append t (payload "0123456789") in
  check Alcotest.int "used = overhead + payload" (Plog.record_overhead + 10) (Plog.used_space t);
  Plog.recycle_to t ~end_off:r.Plog.end_off ~next_seq:1;
  check Alcotest.int "recycle frees space" cap (Plog.free_space t)

let test_append_without_space_rejected () =
  let nvm = device () in
  let t = Plog.format nvm ~base:0 ~size:256 in
  Alcotest.check_raises "oversized append rejected" (Invalid_argument "Plog.append: no space")
    (fun () -> ignore (Plog.append t (Bytes.make 4096 'x')))

let test_attach_bad_magic () =
  let nvm = device () in
  Alcotest.check_raises "unformatted region rejected" (Invalid_argument "Plog.attach: bad magic")
    (fun () -> ignore (Plog.attach nvm ~base:0 ~size:4096))

let test_crash_before_header_persist_keeps_old_head () =
  (* recycle_to persists the header; a crash right after append but before
     any recycle must re-expose all records. *)
  let nvm = device () in
  let t = Plog.format nvm ~base:0 ~size:4096 in
  for i = 1 to 5 do
    ignore (Plog.append t (payload (string_of_int i)))
  done;
  Nvm.crash nvm;
  let _, records = Plog.attach nvm ~base:0 ~size:4096 in
  check Alcotest.int "all five records re-exposed" 5 (List.length records)

(* --------------------------- media faults ----------------------------- *)

(* Device byte offset of payload byte [j] of a record in a base-0 ring. *)
let payload_byte_off t (r : Plog.record) j =
  let start = r.Plog.end_off - Plog.record_overhead - Bytes.length r.Plog.payload in
  Plog.header_size + ((start + 16 + j) mod Plog.data_capacity t)

let test_midring_corruption_quarantined () =
  let nvm = device () in
  let t = Plog.format nvm ~base:0 ~size:4096 in
  let r1 = Plog.append t (payload "the doomed record") in
  let r2 = Plog.append t (payload "second") in
  let r3 = Plog.append t (payload "third") in
  ignore r2;
  Nvm.inject_fault nvm (Nvm.Bit_rot { off = payload_byte_off t r1 3; bit = 5 });
  Nvm.crash nvm;
  let _, scan = Plog.attach_scan nvm ~base:0 ~size:4096 in
  check Alcotest.(list int) "scan resyncs past the damage"
    [ r2.Plog.seq; r3.Plog.seq ]
    (List.map (fun (r : Plog.record) -> r.Plog.seq) scan.Plog.records);
  check Alcotest.int "one sealed record lost" 1 scan.Plog.corrupted_records;
  check Alcotest.bool "damaged lines quarantined" true (scan.Plog.quarantined_lines >= 1);
  check Alcotest.bool "header intact" false scan.Plog.header_lost

let test_last_record_corruption_is_torn_tail () =
  (* Damage to the LAST sealed record is indistinguishable from a torn
     tail: it is discarded like one, without being counted as corruption. *)
  let nvm = device () in
  let t = Plog.format nvm ~base:0 ~size:4096 in
  let r1 = Plog.append t (payload "first") in
  let r2 = Plog.append t (payload "last, to be damaged") in
  Nvm.inject_fault nvm (Nvm.Bit_rot { off = payload_byte_off t r2 0; bit = 1 });
  Nvm.crash nvm;
  let _, scan = Plog.attach_scan nvm ~base:0 ~size:4096 in
  check Alcotest.(list int) "prefix survives" [ r1.Plog.seq ]
    (List.map (fun (r : Plog.record) -> r.Plog.seq) scan.Plog.records);
  check Alcotest.int "counted as torn tail, not corruption" 0 scan.Plog.corrupted_records

let test_poisoned_record_quarantined () =
  let nvm = device () in
  let t = Plog.format nvm ~base:0 ~size:4096 in
  (* A >64-byte first record keeps the second record clear of line 1. *)
  let r1 = Plog.append t (Bytes.make 100 'a') in
  let r2 = Plog.append t (payload "second") in
  let r3 = Plog.append t (payload "third") in
  ignore r1;
  Nvm.crash nvm;
  Nvm.inject_fault nvm (Nvm.Poison { line = 1 });
  let _, scan = Plog.attach_scan nvm ~base:0 ~size:4096 in
  check Alcotest.(list int) "scan survives a poisoned record"
    [ r2.Plog.seq; r3.Plog.seq ]
    (List.map (fun (r : Plog.record) -> r.Plog.seq) scan.Plog.records);
  check Alcotest.int "poisoned record counted" 1 scan.Plog.corrupted_records

let test_header_loss_reformats_with_salvaged_seq () =
  let nvm = device () in
  let t = Plog.format nvm ~base:0 ~size:4096 in
  ignore (Plog.append t (payload "zero"));
  ignore (Plog.append t (payload "one"));
  (* Flip a bit inside the sealed header: its CRC check must fail. *)
  Nvm.inject_fault nvm (Nvm.Bit_rot { off = 8; bit = 0 });
  Nvm.crash nvm;
  Alcotest.check_raises "plain attach refuses the lost header"
    (Invalid_argument "Plog.attach: bad magic") (fun () ->
      ignore (Plog.attach nvm ~base:0 ~size:4096));
  let t', scan = Plog.attach_scan nvm ~base:0 ~size:4096 in
  check Alcotest.bool "header loss detected" true scan.Plog.header_lost;
  check Alcotest.int "every record lost" 0 (List.length scan.Plog.records);
  (* The salvaged sequence number must leap past every frame still readable
     in the ring, or a later lap could resurrect them. *)
  check Alcotest.int "salvaged next_seq past all stale frames" 2 (Plog.next_seq t');
  (* The reformatted ring is usable again. *)
  let r = Plog.append t' (payload "fresh start") in
  check Alcotest.int "fresh record continues the sequence" 2 r.Plog.seq

let prop_random_appends_survive =
  QCheck2.Test.make ~name:"plog: every sealed record survives any crash" ~count:150
    QCheck2.Gen.(list_size (int_range 1 20) (string_size (int_range 0 80)))
    (fun payloads ->
      let nvm = device () in
      let t = Plog.format nvm ~base:0 ~size:8192 in
      let ok = ref true in
      List.iter
        (fun p ->
          if Plog.free_space t >= Plog.record_overhead + String.length p then
            ignore (Plog.append t (Bytes.of_string p)))
        payloads;
      Nvm.crash nvm;
      let _, records = Plog.attach nvm ~base:0 ~size:8192 in
      let expected =
        let rec go space acc = function
          | [] -> List.rev acc
          | p :: rest ->
            if space >= Plog.record_overhead + String.length p then
              go (space - Plog.record_overhead - String.length p) (p :: acc) rest
            else go space acc rest
        in
        go (8192 - Plog.header_size) [] payloads
      in
      if List.length records <> List.length expected then ok := false
      else
        List.iter2
          (fun (r : Plog.record) p -> if Bytes.to_string r.Plog.payload <> p then ok := false)
          records expected;
      !ok)

let prop_wraparound_roundtrip =
  (* Push several laps of traffic through a tiny ring, recycling as
     Reproduce would, so records straddle the wrap point at random
     alignments.  After a crash, attach must return exactly the unrecycled
     suffix, in order, bytes intact. *)
  QCheck2.Test.make ~name:"plog: records straddling the wrap point round-trip"
    ~count:150
    QCheck2.Gen.(tup2 (list_size (int_range 1 40) (int_range 0 120)) (int_range 1 6))
    (fun (sizes, keep) ->
      let nvm = device () in
      let size = 1024 in
      let t = Plog.format nvm ~base:0 ~size in
      let live = Queue.create () in
      List.iteri
        (fun i len ->
          let p = Bytes.init len (fun j -> Char.chr ((i + j) mod 256)) in
          while
            Queue.length live > 0
            && (Plog.free_space t < Plog.record_overhead + len
               || Queue.length live > keep)
          do
            let seq, _, end_off = Queue.pop live in
            Plog.recycle_to t ~end_off ~next_seq:(seq + 1)
          done;
          let r = Plog.append t p in
          Queue.push (r.Plog.seq, p, r.Plog.end_off) live)
        sizes;
      Nvm.crash nvm;
      let _, records = Plog.attach nvm ~base:0 ~size in
      let expected = List.of_seq (Queue.to_seq live) in
      List.length records = List.length expected
      && List.for_all2
           (fun (r : Plog.record) (seq, p, _) ->
             r.Plog.seq = seq && Bytes.equal r.Plog.payload p)
           records expected)

let suite =
  [
    Alcotest.test_case "append then attach" `Quick test_append_attach;
    Alcotest.test_case "torn record discarded" `Quick test_torn_record_discarded;
    Alcotest.test_case "stale records not resurrected" `Quick test_stale_records_not_resurrected;
    Alcotest.test_case "ring wraparound" `Quick test_wraparound;
    Alcotest.test_case "free-space accounting" `Quick test_free_space_accounting;
    Alcotest.test_case "append without space rejected" `Quick test_append_without_space_rejected;
    Alcotest.test_case "attach requires formatted region" `Quick test_attach_bad_magic;
    Alcotest.test_case "crash before recycle re-exposes records" `Quick
      test_crash_before_header_persist_keeps_old_head;
    Alcotest.test_case "mid-ring corruption quarantined" `Quick
      test_midring_corruption_quarantined;
    Alcotest.test_case "last-record damage treated as torn tail" `Quick
      test_last_record_corruption_is_torn_tail;
    Alcotest.test_case "poisoned record quarantined" `Quick test_poisoned_record_quarantined;
    Alcotest.test_case "header loss reformats with salvaged seq" `Quick
      test_header_loss_reformats_with_salvaged_seq;
    QCheck_alcotest.to_alcotest prop_random_appends_survive;
    QCheck_alcotest.to_alcotest prop_wraparound_roundtrip;
  ]

(* Re-entrant recovery: the intent journal (crash-during-recovery and
   crash-during-scrub idempotence), supervised daemon restarts, log-full
   backpressure and the degraded read-only mode. *)

module Sched = Dudetm_sim.Sched
module Stats = Dudetm_sim.Stats
module Nvm = Dudetm_nvm.Nvm
module Config = Dudetm_core.Config
module Rjournal = Dudetm_core.Rjournal
module Checkpoint = Dudetm_core.Checkpoint
module Check = Dudetm_check.Check
module Scrub = Dudetm_scrub.Scrub
module D = Dudetm_core.Dudetm.Make (Dudetm_tm.Tinystm)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let small_cfg =
  {
    Config.default with
    Config.heap_size = 1 lsl 16;
    root_size = 4096;
    nthreads = 2;
    vlog_capacity = 256;
    plog_size = 1 lsl 13;
    meta_size = 8192;
    checkpoint_records = 2;
    seed = 7;
  }

exception Cut

(* Run a single-thread root-counter workload and cut power — at the
   [crash]-th persist boundary, or after drain + stop when [crash] is
   beyond the run (or [None]). *)
let run_and_crash ?crash ?(txs = 8) cfg =
  let t = D.create cfg in
  let nvm = D.nvm t in
  let sites = ref 0 in
  Nvm.set_persist_hook nvm
    (Some
       (fun () ->
         incr sites;
         match crash with Some k when !sites = k -> raise Cut | _ -> ()));
  (try
     ignore
       (Sched.run (fun () ->
            D.start t;
            for _ = 1 to txs do
              ignore
                (D.atomically t ~thread:0 (fun tx ->
                     D.write tx (D.root_base t) (Int64.add (D.read tx (D.root_base t)) 1L)))
            done;
            D.drain t;
            D.stop t))
   with Cut -> ());
  Nvm.set_persist_hook nvm None;
  Nvm.crash nvm;
  nvm

(* ------------------------------------------------------------------ *)
(* Intent journal                                                     *)
(* ------------------------------------------------------------------ *)

let test_rjournal_roundtrip () =
  let cfg = small_cfg in
  let nvm = run_and_crash ~txs:1 cfg in
  let base = Config.rjournal_base cfg in
  let j = Rjournal.format nvm ~base in
  Alcotest.(check bool) "fresh journal idle" true (Rjournal.read j = Rjournal.Idle);
  let v =
    {
      Rjournal.v_durable = 5;
      v_replayed_txs = 2;
      v_discarded_txs = 1;
      v_discarded_records = 1;
      v_corrupted_records = 0;
      v_quarantined_lines = 0;
    }
  in
  Rjournal.write j (Rjournal.Replay v);
  let j2 = Rjournal.attach nvm ~base in
  Alcotest.(check bool) "verdict survives re-attach" true
    (Rjournal.read j2 = Rjournal.Replay v);
  Rjournal.write j2 (Rjournal.Probe { line = 3; original = 42L });
  Alcotest.(check bool) "probe intent readable" true
    (Rjournal.read (Rjournal.attach nvm ~base) = Rjournal.Probe { line = 3; original = 42L })

let test_rjournal_torn_slot () =
  let cfg = small_cfg in
  let nvm = run_and_crash ~txs:1 cfg in
  let base = Config.rjournal_base cfg in
  let j = Rjournal.format nvm ~base in
  let v =
    {
      Rjournal.v_durable = 9;
      v_replayed_txs = 3;
      v_discarded_txs = 0;
      v_discarded_records = 0;
      v_corrupted_records = 0;
      v_quarantined_lines = 0;
    }
  in
  Rjournal.write j (Rjournal.Replay v);
  Rjournal.write j (Rjournal.Probe { line = 1; original = 7L });
  (* The probe landed in the second slot (sequence 3).  Tear it: a torn
     intent write must leave the previously sealed verdict in force. *)
  let torn = base + 128 + 20 in
  Nvm.store_u8 nvm torn (Nvm.load_u8 nvm torn lxor 0xff);
  Nvm.persist nvm ~off:torn ~len:1;
  Alcotest.(check bool) "torn slot falls back to sealed verdict" true
    (Rjournal.read (Rjournal.attach nvm ~base) = Rjournal.Replay v);
  (* Tear the other slot too: with no valid slot at all, no intent can
     ever have been sealed, so the journal self-heals to Idle. *)
  let torn0 = base + 20 in
  Nvm.store_u8 nvm torn0 (Nvm.load_u8 nvm torn0 lxor 0xff);
  Nvm.persist nvm ~off:torn0 ~len:1;
  Alcotest.(check bool) "both torn self-heals to idle" true
    (Rjournal.read (Rjournal.attach nvm ~base) = Rjournal.Idle)

(* ------------------------------------------------------------------ *)
(* Config validation                                                  *)
(* ------------------------------------------------------------------ *)

let test_invalid_config () =
  let reject msg cfg =
    match Config.validate cfg with
    | () -> Alcotest.failf "%s: invalid config accepted" msg
    | exception Config.Invalid_config m ->
      Alcotest.(check bool) (msg ^ ": message labelled") true (contains m "Config:")
  in
  reject "negative daemon fault rate" { small_cfg with Config.daemon_fault_rate = -0.1 };
  reject "fault rate above one" { small_cfg with Config.daemon_fault_rate = 1.5 };
  reject "backoff cap below base"
    { small_cfg with Config.daemon_backoff_base = 1000; daemon_backoff_cap = 10 };
  reject "hwm fraction above one" { small_cfg with Config.bp_hwm_fraction = 1.5 };
  reject "negative throttle budget" { small_cfg with Config.bp_wait_budget = -1 };
  reject "negative pmalloc budget" { small_cfg with Config.pmalloc_wait_budget = -1 };
  Config.validate small_cfg

(* ------------------------------------------------------------------ *)
(* Double-attach and double-scrub idempotence                         *)
(* ------------------------------------------------------------------ *)

let test_double_attach_idempotent () =
  let cfg = small_cfg in
  (* Mid-pipeline cut: the first attach has real replay work to do. *)
  let nvm = run_and_crash ~crash:23 cfg in
  let heap () = Nvm.persisted_bytes nvm 0 cfg.Config.heap_size in
  let ckpt_state () =
    snd (Checkpoint.attach nvm ~base:(Config.meta_base cfg) ~size:cfg.Config.meta_size)
  in
  let t1, r1 = D.attach cfg nvm in
  let h1 = heap () and c1 = ckpt_state () in
  (* Power lost the instant recovery finished: a fresh attach must
     converge to the identical verdict, heap and allocator state. *)
  Nvm.crash nvm;
  let t2, r2 = D.attach cfg nvm in
  Alcotest.(check bool) "recovery reports identical" true (r1 = r2);
  Alcotest.(check int) "durable id identical" (D.durable_id t1) (D.durable_id t2);
  Alcotest.(check bool) "heap bytes identical" true (h1 = heap ());
  Alcotest.(check bool) "checkpointed allocator identical" true (c1 = ckpt_state ())

let test_double_scrub_idempotent () =
  let cfg = small_cfg in
  let nvm = run_and_crash cfg in
  (* Rot a byte the workload never writes: no live record covers it, so
     the checkpointed content is unreconstructible and the loss must be
     *reported* — identically, no matter how many times the scrub runs. *)
  Nvm.inject_fault nvm (Nvm.Bit_rot { off = 3000; bit = 2 });
  let r1 = Scrub.scrub ~repair:true ~probe_stuck:true cfg nvm in
  let h1 = Nvm.persisted_bytes nvm 0 cfg.Config.heap_size in
  let r2 = Scrub.scrub ~repair:true ~probe_stuck:true cfg nvm in
  let h2 = Nvm.persisted_bytes nvm 0 cfg.Config.heap_size in
  let r3 = Scrub.scrub ~repair:true ~probe_stuck:true cfg nvm in
  Alcotest.(check bool) "damage reported" true (r1.Scrub.bad_extents <> []);
  (* The first pass may additionally repair extents left stale by the
     crash; from then on the verdict is a fixed point: the unrepairable
     loss is re-reported identically, nothing else changes. *)
  Alcotest.(check bool) "unrepairable loss re-reported identically" true
    (r1.Scrub.bad_extents = r2.Scrub.bad_extents);
  Alcotest.(check int) "nothing left to repair" 0 r2.Scrub.extents_repaired;
  if r2 <> r3 then
    Alcotest.failf "scrub verdict did not reach a fixed point:\n  second: %s\n  third:  %s"
      (Format.asprintf "%a" Scrub.pp_report r2)
      (Format.asprintf "%a" Scrub.pp_report r3);
  Alcotest.(check bool) "repeated scrub leaves the heap untouched" true (h1 = h2)

(* ------------------------------------------------------------------ *)
(* Nested-crash campaign                                              *)
(* ------------------------------------------------------------------ *)

let test_recovery_campaign_smoke () =
  match Check.check_recovery ~budget:Check.smoke_recovery_budget () with
  | Check.Recovery_pass { runs; boundaries } ->
    Alcotest.(check bool) "explored runs" true (runs > 10);
    Alcotest.(check bool) "counted boundaries" true (boundaries > 0)
  | Check.Recovery_fail rcf ->
    Alcotest.failf "nested-crash campaign failed: %s\n  %s" rcf.Check.rcf_reason
      (Check.recovery_replay_line rcf)

let test_recovery_campaign_catches_mutant () =
  match
    Check.check_recovery ~fault:Config.Skip_recovery_journal
      ~budget:Check.smoke_recovery_budget ()
  with
  | Check.Recovery_pass _ ->
    Alcotest.fail "skip-recovery-journal mutant escaped the nested-crash campaign"
  | Check.Recovery_fail rcf ->
    Alcotest.(check bool) "replay line names the mutant" true
      (contains (Check.recovery_replay_line rcf) "--mutate skip-recovery-journal")

(* ------------------------------------------------------------------ *)
(* Supervised daemons                                                 *)
(* ------------------------------------------------------------------ *)

let test_daemon_fault_sweep () =
  match Check.check_daemons ~seeds:2 () with
  | Check.Daemon_pass { runs; faults; restarts } ->
    Alcotest.(check bool) "ran" true (runs > 0);
    Alcotest.(check bool) "faults injected" true (faults > 0);
    Alcotest.(check bool) "daemons restarted" true (restarts > 0)
  | Check.Daemon_fail df ->
    Alcotest.failf "daemon fault sweep failed: %s\n  %s" df.Check.df_reason
      (Check.daemon_replay_line df)

let test_daemon_restarts_counted () =
  let cfg = { small_cfg with Config.daemon_fault_rate = 0.3 } in
  let t = D.create cfg in
  ignore
    (Sched.run (fun () ->
         D.start t;
         for _ = 1 to 10 do
           ignore
             (D.atomically t ~thread:0 (fun tx ->
                  D.write tx (D.root_base t) (Int64.add (D.read tx (D.root_base t)) 1L)))
         done;
         D.drain t;
         D.stop t));
  Alcotest.(check int64) "no committed work lost to daemon faults" 10L
    (D.heap_read_u64 t (D.root_base t));
  Alcotest.(check int) "fully durable" 10 (D.durable_id t);
  let st = D.stats t in
  Alcotest.(check bool) "faults counted" true (Stats.get st "daemon_faults" > 0);
  Alcotest.(check bool) "restarts counted" true (Stats.get st "daemon_restarts" > 0);
  Alcotest.(check bool) "backoff cycles counted" true
    (Stats.get st "daemon_backoff_cycles" > 0)

(* ------------------------------------------------------------------ *)
(* Backpressure                                                       *)
(* ------------------------------------------------------------------ *)

let test_backpressure_throttle () =
  (* A zero high-water mark makes every transaction see ring pressure, so
     the throttle path runs deterministically; the bounded wait must
     still let every transaction through. *)
  let cfg = { small_cfg with Config.bp_hwm_fraction = 0.0; bp_wait_budget = 500 } in
  let t = D.create cfg in
  ignore
    (Sched.run (fun () ->
         D.start t;
         for _ = 1 to 5 do
           ignore
             (D.atomically t ~thread:0 (fun tx ->
                  D.write tx (D.root_base t) (Int64.add (D.read tx (D.root_base t)) 1L)))
         done;
         D.drain t;
         D.stop t));
  Alcotest.(check int64) "throttled but not blocked" 5L (D.heap_read_u64 t (D.root_base t));
  let st = D.stats t in
  Alcotest.(check bool) "throttle events counted" true (Stats.get st "bp_throttle_events" > 0);
  Alcotest.(check bool) "stall cycles counted" true (Stats.get st "bp_throttle_cycles" > 0);
  Alcotest.(check bool) "ring high-water mark tracked" true
    (Stats.get st "plog_hwm_bytes" > 0);
  Alcotest.(check bool) "vlog high-water mark tracked" true
    (Stats.get st "vlog_hwm_entries" > 0)

let test_pmalloc_bounded_wait () =
  let cfg = { small_cfg with Config.pmalloc_wait_budget = 300 } in
  let t = D.create cfg in
  let raised = ref false in
  ignore
    (Sched.run (fun () ->
         D.start t;
         (try
            while true do
              ignore (D.atomically t ~thread:0 (fun tx -> ignore (D.pmalloc tx 4096)))
            done
          with Dudetm_core.Dudetm.Pmem_exhausted -> raised := true)));
  Alcotest.(check bool) "exhaustion still surfaces after the bounded wait" true !raised;
  Alcotest.(check bool) "allocation waits counted" true
    (Stats.get (D.stats t) "pmalloc_waits" > 0)

(* ------------------------------------------------------------------ *)
(* Degraded read-only mode                                            *)
(* ------------------------------------------------------------------ *)

let test_read_only_mode () =
  let t = D.create small_cfg in
  ignore
    (Sched.run (fun () ->
         D.start t;
         ignore (D.atomically t ~thread:0 (fun tx -> D.write tx (D.root_base t) 7L));
         D.drain t;
         D.freeze t ~reason:"unreconstructible extents";
         Alcotest.(check bool) "frozen reason visible" true
           (D.read_only t = Some "unreconstructible extents");
         (match D.atomically t ~thread:0 (fun tx -> D.read tx (D.root_base t)) with
         | Some (v, _) -> Alcotest.(check int64) "reads still served" 7L v
         | None -> Alcotest.fail "read-only transaction aborted");
         (match D.atomically t ~thread:0 (fun tx -> D.write tx (D.root_base t) 9L) with
         | exception Dudetm_core.Dudetm.Read_only reason ->
           Alcotest.(check string) "write rejected with the freeze reason"
             "unreconstructible extents" reason
         | _ -> Alcotest.fail "write accepted in read-only mode");
         (match D.atomically t ~thread:0 (fun tx -> ignore (D.pmalloc tx 64)) with
         | exception Dudetm_core.Dudetm.Read_only _ -> ()
         | _ -> Alcotest.fail "pmalloc accepted in read-only mode");
         D.stop t));
  Alcotest.(check int64) "state preserved" 7L (D.heap_read_u64 t (D.root_base t))

(* ------------------------------------------------------------------ *)
(* Drain diagnostics                                                  *)
(* ------------------------------------------------------------------ *)

let test_drain_diagnostic_fields () =
  let cfg = { small_cfg with Config.nthreads = 1; drain_budget = 1 } in
  let t = D.create cfg in
  let stalled = ref None in
  ignore
    (Sched.run (fun () ->
         D.start t;
         for _ = 1 to 4 do
           ignore
             (D.atomically t ~thread:0 (fun tx ->
                  D.write tx (D.root_base t) (Int64.add (D.read tx (D.root_base t)) 1L)))
         done;
         match D.drain t with
         | () -> ()
         | exception Dudetm_core.Dudetm.Drain_stalled msg -> stalled := Some msg));
  match !stalled with
  | None -> Alcotest.fail "drain returned despite a 1-cycle budget"
  | Some msg ->
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("diagnostic reports " ^ needle) true (contains msg needle))
      [ "daemon_restarts="; "daemon_backoff_cycles="; "bp_throttle_events="; "read_only=" ]

let suite =
  [
    Alcotest.test_case "intent journal roundtrip" `Quick test_rjournal_roundtrip;
    Alcotest.test_case "torn intent leaves previous in force" `Quick test_rjournal_torn_slot;
    Alcotest.test_case "invalid config rejected" `Quick test_invalid_config;
    Alcotest.test_case "double attach idempotent" `Quick test_double_attach_idempotent;
    Alcotest.test_case "double scrub idempotent" `Quick test_double_scrub_idempotent;
    Alcotest.test_case "nested-crash campaign passes" `Quick test_recovery_campaign_smoke;
    Alcotest.test_case "campaign catches skip-journal mutant" `Quick
      test_recovery_campaign_catches_mutant;
    Alcotest.test_case "daemon fault sweep" `Quick test_daemon_fault_sweep;
    Alcotest.test_case "daemon restarts counted, no work lost" `Quick
      test_daemon_restarts_counted;
    Alcotest.test_case "backpressure throttles, never blocks" `Quick test_backpressure_throttle;
    Alcotest.test_case "pmalloc bounded wait" `Quick test_pmalloc_bounded_wait;
    Alcotest.test_case "degraded read-only mode" `Quick test_read_only_mode;
    Alcotest.test_case "drain diagnostic covers supervision" `Quick
      test_drain_diagnostic_fields;
  ]

(* Command-line driver: run any benchmark workload on any evaluated system
   with custom parameters, or run randomized crash-recovery torture.

     dune exec bin/dudetm_cli.exe -- run --workload hashtable --system dude
     dune exec bin/dudetm_cli.exe -- run -w tpcc-tree -s mnemosyne -n 2000 --threads 8
     dune exec bin/dudetm_cli.exe -- torture --rounds 100
     dune exec bin/dudetm_cli.exe -- layout *)

open Cmdliner
module H = Dudetm_harness.Harness
module Config = Dudetm_core.Config
module Nvm = Dudetm_nvm.Nvm
module Sched = Dudetm_sim.Sched
module Rng = Dudetm_sim.Rng
module Stats = Dudetm_sim.Stats
module W = Dudetm_workloads
module D = Dudetm_core.Dudetm.Make (Dudetm_tm.Tinystm)

(* ------------------------------- run ---------------------------------- *)

let workload_of_string = function
  | "kv" -> Ok (H.kv_bench ())
  | "kv-tree" -> Ok (H.kv_bench ~storage:W.Kv.Tree ())
  | "hashtable" -> Ok (H.hashtable_bench ())
  | "bptree" -> Ok (H.bptree_bench ())
  | "tatp-hash" -> Ok (H.tatp_bench ~storage:W.Kv.Hash ())
  | "tatp-tree" -> Ok (H.tatp_bench ~storage:W.Kv.Tree ())
  | "tpcc-hash" -> Ok (H.tpcc_bench ~storage:W.Kv.Hash ())
  | "tpcc-tree" -> Ok (H.tpcc_bench ~storage:W.Kv.Tree ())
  | "tpcc-mixed" -> Ok (H.tpcc_bench ~storage:W.Kv.Tree ~mixed:true ())
  | s ->
    Error
      (`Msg
        (Printf.sprintf
           "unknown workload %S (try kv, kv-tree, hashtable, bptree, tatp-hash, tatp-tree, tpcc-hash, tpcc-tree, tpcc-mixed)"
           s))

let system_of_string = function
  | "dude" -> Ok H.Dude
  | "dude-inf" -> Ok H.Dude_inf
  | "dude-sync" -> Ok H.Dude_sync
  | "volatile" -> Ok H.Volatile
  | "mnemosyne" -> Ok H.Mnemosyne
  | "nvml" -> Ok H.Nvml
  | s ->
    Error
      (`Msg
        (Printf.sprintf
           "unknown system %S (try dude, dude-inf, dude-sync, volatile, mnemosyne, nvml)" s))

let workload_conv = Arg.conv (workload_of_string, fun ppf b -> Fmt.string ppf b.H.bname)

let system_conv = Arg.conv (system_of_string, fun ppf s -> Fmt.string ppf (H.system_name s))

let run_cmd =
  let workload =
    Arg.(
      required
      & opt (some workload_conv) None
      & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Benchmark workload to run.")
  in
  let system =
    Arg.(
      value & opt system_conv H.Dude
      & info [ "s"; "system" ] ~docv:"SYSTEM" ~doc:"Durable-transaction system.")
  in
  let ntxs =
    Arg.(value & opt int 0 & info [ "n"; "txs" ] ~doc:"Transactions to run (0 = default).")
  in
  let threads = Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Perform threads.") in
  let bandwidth =
    Arg.(value & opt float 1.0 & info [ "bandwidth" ] ~doc:"NVM write bandwidth, GB/s.")
  in
  let latency =
    Arg.(value & opt int 1000 & info [ "latency" ] ~doc:"Persist latency, cycles.")
  in
  let counters =
    Arg.(value & flag & info [ "counters" ] ~doc:"Print all system counters afterwards.")
  in
  let run workload system ntxs threads bandwidth latency counters =
    if system = H.Nvml && not workload.H.static_ok then
      `Error (false, "NVML only supports the hash-based (static) workloads")
    else begin
      let bench = if ntxs > 0 then { workload with H.ntxs } else workload in
      let ptm = H.make_system ~nthreads:threads ~latency ~bandwidth system in
      let r = H.run_bench ptm bench in
      Printf.printf "%s on %s: %d transactions, %d threads, %.1f GB/s, %d-cycle persists\n"
        bench.H.bname ptm.Dudetm_baselines.Ptm_intf.name r.H.ntxs_run threads bandwidth latency;
      Printf.printf "  throughput:       %s\n" (H.pp_ktps r.H.ktps);
      Printf.printf "  cycles per tx:    %.0f (wall, all threads)\n" r.H.cycles_per_tx;
      Printf.printf "  writes per tx:    %.1f\n"
        (float_of_int r.H.writes /. float_of_int (max 1 r.H.ntxs_run));
      Printf.printf "  NVM write bytes:  %d (%.1f per tx)\n" r.H.nvm_bytes
        (float_of_int r.H.nvm_bytes /. float_of_int (max 1 r.H.ntxs_run));
      if counters then begin
        print_endline "  counters:";
        List.iter (fun (k, v) -> Printf.printf "    %-28s %d\n" k v) r.H.counters
      end;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload on one system and report throughput.")
    Term.(ret (const run $ workload $ system $ ntxs $ threads $ bandwidth $ latency $ counters))

(* ------------------------------- trace --------------------------------- *)

module Trace = Dudetm_trace.Trace

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let trace_cmd =
  let workload =
    Arg.(
      value
      & opt workload_conv (H.kv_bench ())
      & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Workload to profile (default kv).")
  in
  let system =
    Arg.(
      value & opt system_conv H.Dude
      & info [ "s"; "system" ] ~docv:"SYSTEM" ~doc:"Durable-transaction system.")
  in
  let ntxs =
    Arg.(value & opt int 0 & info [ "n"; "txs" ] ~doc:"Transactions to run (0 = default).")
  in
  let threads = Arg.(value & opt int 4 & info [ "threads" ] ~doc:"Perform threads.") in
  let bandwidth =
    Arg.(value & opt float 1.0 & info [ "bandwidth" ] ~doc:"NVM write bandwidth, GB/s.")
  in
  let latency =
    Arg.(value & opt int 1000 & info [ "latency" ] ~doc:"Persist latency, cycles.")
  in
  let ring =
    Arg.(
      value & opt int 65536
      & info [ "ring" ] ~doc:"Trace ring capacity, events (oldest are dropped on wrap).")
  in
  let export =
    Arg.(
      value
      & opt (enum [ ("none", `None); ("chrome", `Chrome); ("summary", `Summary) ]) `None
      & info [ "export" ] ~docv:"FORMAT"
          ~doc:
            "Write the trace to a file: $(b,chrome) for Chrome trace_event JSON \
             (chrome://tracing, Perfetto), $(b,summary) for the machine-readable \
             per-phase profile.")
  in
  let out =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Output file for --export (default dudetm_trace.json / dudetm_summary.json).")
  in
  let run workload system ntxs threads bandwidth latency ring export out =
    if system = H.Nvml && not workload.H.static_ok then
      `Error (false, "NVML only supports the hash-based (static) workloads")
    else begin
      let bench = if ntxs > 0 then { workload with H.ntxs } else workload in
      let ptm = H.make_system ~nthreads:threads ~latency ~bandwidth system in
      Trace.enable ~capacity:ring ();
      let r = H.run_bench ptm bench in
      Trace.disable ();
      let total_cycles = r.H.run_cycles in
      Printf.printf "%s on %s: %d transactions, %d threads, %.1f GB/s, %d-cycle persists\n"
        bench.H.bname ptm.Dudetm_baselines.Ptm_intf.name r.H.ntxs_run threads bandwidth
        latency;
      Printf.printf "  throughput:  %s    wall cycles: %d\n\n" (H.pp_ktps r.H.ktps)
        total_cycles;
      Printf.printf "  %-24s %9s %14s %7s %9s %9s %9s\n" "phase" "count" "cycles" "%wall"
        "p50" "p99" "max";
      List.iter
        (fun p ->
          Printf.printf "  %-24s %9d %14d %6.1f%% %9d %9d %9d\n"
            (p.Trace.ph_cat ^ "." ^ p.Trace.ph_name)
            p.Trace.ph_count p.Trace.ph_total
            (100.0 *. float_of_int p.Trace.ph_total /. float_of_int (max 1 total_cycles))
            p.Trace.ph_p50 p.Trace.ph_p99 p.Trace.ph_max)
        (Trace.phases ());
      let accts = Trace.nvm_accts () in
      if accts <> [] then begin
        Printf.printf "\n  NVM channel, by issuing thread:\n";
        Printf.printf "  %-24s %12s %14s %9s %12s\n" "thread" "bytes" "cycles" "ops"
          "utilization";
        List.iter
          (fun a ->
            Printf.printf "  %-24s %12d %14d %9d %11.1f%%\n" a.Trace.nv_thread
              a.Trace.nv_bytes a.Trace.nv_cycles a.Trace.nv_ops
              (100.0 *. float_of_int a.Trace.nv_cycles /. float_of_int (max 1 total_cycles)))
          accts
      end;
      let dev_accts = Trace.nvm_dev_accts () in
      if dev_accts <> [] then begin
        Printf.printf "\n  NVM channel, by device:\n";
        Printf.printf "  %-24s %12s %14s %9s %12s\n" "device" "bytes" "cycles" "ops"
          "utilization";
        List.iter
          (fun a ->
            Printf.printf "  %-24s %12d %14d %9d %11.1f%%\n" a.Trace.nd_dev a.Trace.nd_bytes
              a.Trace.nd_cycles a.Trace.nd_ops
              (100.0 *. float_of_int a.Trace.nd_cycles /. float_of_int (max 1 total_cycles)))
          dev_accts
      end;
      Printf.printf "\n  trace: %d events (%d dropped), %d phases\n" (Trace.events ())
        (Trace.dropped ())
        (List.length (Trace.phases ()));
      let violations = Trace.validate () in
      (match export with
      | `None -> ()
      | `Chrome ->
        let file = Option.value out ~default:"dudetm_trace.json" in
        write_file file (Trace.to_chrome_json ());
        Printf.printf "  wrote Chrome trace_event JSON to %s\n" file
      | `Summary ->
        let file = Option.value out ~default:"dudetm_summary.json" in
        write_file file (Trace.summary_json ~total_cycles ());
        Printf.printf "  wrote profile summary to %s\n" file);
      match violations with
      | [] ->
        Printf.printf "  self-validation: clean\n";
        `Ok ()
      | vs ->
        List.iter (fun v -> Printf.printf "  trace violation: %s\n" v) vs;
        `Error (false, "trace self-validation failed")
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Profile a workload with cycle-accurate tracing: per-phase cycle attribution \
          (Perform / Persist / Reproduce / TM), NVM channel utilization per daemon, and \
          optional Chrome trace_event export.")
    Term.(
      ret
        (const run $ workload $ system $ ntxs $ threads $ bandwidth $ latency $ ring
       $ export $ out))

(* ------------------------------ torture ------------------------------- *)

exception Crashed

let torture_round cfg seed =
  let rng = Rng.create seed in
  let crash_cycles = 1_000 + Rng.int rng 500_000 in
  let evict = Rng.float rng in
  let t = D.create cfg in
  let slots = 128 in
  (try
     ignore
       (Sched.run (fun () ->
            D.start t;
            for th = 0 to cfg.Config.nthreads - 1 do
              ignore
                (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                     while true do
                       ignore
                         (D.atomically t ~thread:th (fun tx ->
                              let c = D.read tx 0 in
                              let c1 = Int64.add c 1L in
                              D.write tx (8 + (8 * (Int64.to_int c1 mod slots))) c1;
                              D.write tx 0 c1))
                     done))
            done;
            Sched.advance crash_cycles;
            raise Crashed))
   with Crashed -> ());
  Nvm.crash ~evict_fraction:evict ~rng (D.nvm t);
  let t2, report = D.attach cfg (D.nvm t) in
  let d = report.Dudetm_core.Dudetm.durable in
  if D.heap_read_u64 t2 0 <> Int64.of_int d then
    failwith (Printf.sprintf "round %d: counter != durable id %d" seed d);
  (crash_cycles, evict, d)

let torture_cmd =
  let rounds = Arg.(value & opt int 50 & info [ "rounds" ] ~doc:"Crash rounds to run.") in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print each round.") in
  let run rounds verbose =
    let cfg =
      {
        Config.default with
        Config.heap_size = 1 lsl 20;
        nthreads = 3;
        vlog_capacity = 1024;
        plog_size = 1 lsl 14;
      }
    in
    for seed = 1 to rounds do
      let cycles, evict, d = torture_round cfg seed in
      if verbose then
        Printf.printf "round %3d: crash@%-7d evict=%.2f durable=%d OK\n%!" seed cycles evict d
    done;
    Printf.printf "torture: %d randomized crash/recovery rounds, all consistent\n" rounds
  in
  Cmd.v
    (Cmd.info "torture" ~doc:"Randomized crash-point injection with recovery verification.")
    Term.(const run $ rounds $ verbose)

(* ------------------------------- check -------------------------------- *)

let check_cmd =
  let open Dudetm_check in
  let system =
    Arg.(
      value & opt string "all"
      & info [ "s"; "system" ] ~docv:"SYSTEM"
          ~doc:
            (Printf.sprintf "System to check: all, or one of %s."
               (String.concat ", " Check.sut_names)))
  in
  let workload =
    Arg.(
      value & opt string "all"
      & info [ "w"; "workload" ] ~docv:"WORKLOAD"
          ~doc:"Checker workload: counter, overlap, counter1, or all.")
  in
  let threads = Arg.(value & opt int 3 & info [ "threads" ] ~doc:"Worker threads.") in
  let txs =
    Arg.(
      value & opt (some int) None
      & info [ "txs" ]
          ~doc:
            "Transactions per thread (default 2); with --shards, cross-shard \
             transfers driven (default 10).")
  in
  let deep =
    Arg.(value & flag & info [ "deep" ] ~doc:"Use the deep exploration budget.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Use the bounded tier-1 budget, ignoring DUDETM_CHECK_* environment knobs.")
  in
  let crash_budget =
    Arg.(
      value & opt int 0
      & info [ "crash-budget" ]
          ~doc:"Crash boundaries to explore under the default schedule (0 = budget default).")
  in
  let sched_seeds =
    Arg.(
      value & opt int (-1)
      & info [ "sched-seeds" ] ~doc:"Random-preemption seeds to try (-1 = budget default).")
  in
  let mutate =
    let faults =
      [
        ("none", Config.No_fault);
        ("early-durable", Config.Early_durable_publish);
        ("unfenced-reproduce", Config.Unfenced_reproduce);
        ("skip-crc-verify", Config.Skip_crc_verify);
        ("skip-recovery-journal", Config.Skip_recovery_journal);
        ("skip-fragment-gate", Config.Skip_fragment_gate);
        ("skip-batch-seal", Config.Skip_batch_seal);
        ("skip-quorum-gate", Config.Skip_quorum_gate);
        ("skip-handoff-seal", Config.Skip_handoff_seal);
        ("skip-snapshot-validate", Config.Skip_snapshot_validate);
        ("skip-admission-gate", Config.Skip_admission_gate);
      ]
    in
    Arg.(
      value
      & opt (enum faults) Config.No_fault
      & info [ "mutate" ] ~docv:"FAULT"
          ~doc:
            "Seed a deliberate bug into DudeTM (checker self-validation): none, \
             early-durable, unfenced-reproduce, skip-crc-verify, \
             skip-recovery-journal, skip-fragment-gate (Reproduce replays \
             cross-shard fragments without waiting for sibling durability; \
             caught by --shards), skip-batch-seal (group commit publishes \
             durability at batch seal instead of after the record's fence; \
             caught by --batch), skip-quorum-gate (replication acknowledges \
             at the primary-local seal instead of the quorum watermark; caught \
             by --replica), skip-handoff-seal (migration flips key-range \
             ownership without sealing the handoff record and the new \
             partition descriptor; caught by --migrate), or \
             skip-snapshot-validate (read-only snapshots extend their epoch \
             past a concurrent commit without revalidating the read-set; \
             caught by --snapshot), or skip-admission-gate (the serving \
             front end never sheds and releases write replies at commit \
             instead of the durable watermark; caught by --serve).")
  in
  let batch =
    Arg.(
      value & flag
      & info [ "batch" ]
          ~doc:
            "Run the batch-boundary crash campaign instead: drive the pipelined \
             combine/flush group commit with small batches, cut power at every \
             persist boundary (including mid-pipeline, between a batch's seal \
             and its record fence), re-attach, and require the recovered state \
             to be exactly the acknowledged durable prefix — then re-crash the \
             recovered engine (two deep) and verify again.")
  in
  let replica =
    Arg.(
      value & flag
      & info [ "replica" ]
          ~doc:
            "Run the replicated-durability failover campaign instead: ship the \
             redo log to K replicas over simulated links (clean, faulty and \
             partitioned scenarios), kill the primary at sampled persist \
             boundaries, promote a replica, and require every quorum-acked \
             transaction to survive with the promoted image exactly the \
             durable-prefix model state.")
  in
  let replica_count =
    Arg.(
      value & opt int Dudetm_check.Check.default_replica_count
      & info [ "replicas" ] ~docv:"K" ~doc:"With --replica: replica count.")
  in
  let replica_scenario =
    Arg.(
      value & opt (some string) None
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:
            "With --replica: restrict the sweep to one link scenario (clean, \
             faulty, or partition); combine with --crash-at to replay one \
             exact primary kill.")
  in
  let shards =
    Arg.(
      value & flag
      & info [ "shards" ]
          ~doc:
            "Run the sharded cross-commit campaign instead: drive cross-shard \
             transfers over a multi-region instance, cut power at sampled persist \
             boundaries of every shard's device, re-attach, and require every \
             transfer to be all-or-nothing and every vector-watermark \
             acknowledgement to survive.")
  in
  let shard_count =
    Arg.(
      value & opt int Dudetm_check.Check.default_shard_count
      & info [ "shard-count" ] ~doc:"With --shards: independent regions to create.")
  in
  let migrate =
    Arg.(
      value & flag
      & info [ "migrate" ]
          ~doc:
            "Run the live-migration crash campaign instead: reshard a multi-region \
             instance 4->8 under traffic (double-write window, sealed handoff \
             record, atomic descriptor flip), cut power at sampled persist \
             boundaries on every device — including between recovery's own \
             handoff seals (two deep) — re-attach, complete the resharding, and \
             require every key on exactly one shard with no acknowledged write \
             lost and every moved range recycled.")
  in
  let snapshot =
    Arg.(
      value & flag
      & info [ "snapshot" ]
          ~doc:
            "Run the snapshot-read crash campaign instead: pair-writer \
             transactions (both slots of a pair always equal) against a \
             concurrent read-only snapshot reader in volatile and \
             durable-only mode, power cuts at sampled persist boundaries \
             while durable reads run; every completed read-set must be \
             consistent (never torn across a writer's commit) and every \
             durable-mode value must survive recovery.")
  in
  let serve =
    Arg.(
      value & flag
      & info [ "serve" ]
          ~doc:
            "Run the serving front-end crash campaign instead: closed-loop \
             client sessions drive pair writes through the bounded queue, \
             admission gate and durable-watermark acker of the multi-tenant \
             front end; power cuts mid-burst at sampled persist boundaries \
             must lose no acknowledged request and half-apply no \
             unacknowledged one (acked-prefix oracle).")
  in
  let media =
    Arg.(
      value & flag
      & info [ "media" ]
          ~doc:
            "Run the media-fault campaign instead: inject seeded bit rot, poison, and \
             stuck lines into the persisted image after crashes, scrub, recover, and \
             require every corruption to be repaired or reported — never silent.")
  in
  let media_faults =
    Arg.(
      value & opt (some string) None
      & info [ "faults" ] ~docv:"MIX"
          ~doc:"With --media and --media-seed: replay one exact case with this fault mix \
                (heap or mixed).")
  in
  let media_seed =
    Arg.(
      value & opt (some int) None
      & info [ "media-seed" ] ~docv:"SEED"
          ~doc:"With --media and --faults: the fault-injection seed of the case to replay.")
  in
  let media_seeds =
    Arg.(
      value & opt int Dudetm_check.Check.default_media_seeds
      & info [ "media-seeds" ] ~doc:"Fault-injection seeds the --media campaign sweeps.")
  in
  let evict =
    Arg.(
      value & opt float 0.0
      & info [ "evict" ] ~docv:"FRACTION"
          ~doc:
            "Cache-eviction adversary: each dirty line independently leaks into the \
             persisted image with this probability at every power cut (0 disables).")
  in
  let evict_seed =
    Arg.(value & opt int 1 & info [ "evict-seed" ] ~doc:"RNG seed for --evict.")
  in
  let sched =
    Arg.(
      value & opt (some string) None
      & info [ "sched" ] ~docv:"SCHED"
          ~doc:
            "Replay one exact case under this schedule (default, seed:N, or \
             prefix:c0,c1,...) instead of exploring.")
  in
  let crash_at =
    Arg.(
      value & opt int 0
      & info [ "crash-at" ]
          ~doc:"With --sched (or alone): cut power at this persist boundary (0 = none).")
  in
  let recovery =
    Arg.(
      value & flag
      & info [ "recovery" ]
          ~doc:
            "Run the nested-crash recovery campaign instead: cut power at sampled \
             persist boundaries inside attach and scrub (and, two deep, inside the \
             recovery of a crashed recovery) and require every leg to converge to the \
             uninterrupted recovery's durable ID, heap state, and report.")
  in
  let leg =
    Arg.(
      value & opt (some string) None
      & info [ "leg" ] ~docv:"LEG"
          ~doc:
            "With --recovery: replay one exact nested-crash case whose first \
             recovery-time cut lands in this leg (attach or scrub); combine with \
             --crash-at, --crash2 and --crash3.")
  in
  let crash2 =
    Arg.(
      value & opt int 0
      & info [ "crash2" ]
          ~doc:
            "With --recovery --leg: boundary cut inside that recovery leg (0 = none). \
             With --batch: second power cut, counted after the first recovery. \
             With --migrate: second cut, counted from the first re-attach on.")
  in
  let crash3 =
    Arg.(
      value & opt int 0
      & info [ "crash3" ]
          ~doc:"With --recovery --leg: boundary cut inside the second recovery (0 = none).")
  in
  let rec_seeds =
    Arg.(
      value & opt int 0
      & info [ "rec-seeds" ]
          ~doc:"With --recovery: first-crash points to sweep (0 = budget default).")
  in
  let daemons =
    Arg.(
      value & flag
      & info [ "daemons" ]
          ~doc:
            "Run the daemon fault-injection sweep instead: Persist and Reproduce \
             workers raise seeded transient faults and are restarted by the \
             supervisor; runs must still drain and recover exactly, moving only the \
             restart/backoff counters.")
  in
  let daemon_seed =
    Arg.(
      value & opt (some int) None
      & info [ "daemon-seed" ] ~docv:"SEED"
          ~doc:"With --daemons: replay the single case with this seed (combine with \
                --crash-at).")
  in
  let fault_rate =
    Arg.(
      value & opt float Dudetm_check.Check.default_daemon_rate
      & info [ "fault-rate" ] ~docv:"RATE"
          ~doc:"With --daemons: per-opportunity transient-fault probability.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print progress.") in
  let run system workload threads txs deep quick crash_budget sched_seeds fault sched
      crash_at batch replica replica_count replica_scenario shards shard_count migrate
      snapshot serve media media_faults media_seed media_seeds evict_frac evict_seed
      recovery leg crash2 crash3 rec_seeds daemons daemon_seed fault_rate verbose =
    let log = if verbose then fun s -> Printf.printf "  %s\n%!" s else fun _ -> () in
    let opt n = if n > 0 then Some n else None in
    let txs_or d = Option.value txs ~default:d in
    if replica then begin
      match
        let scenario =
          Option.map Check.replica_scenario_of_string replica_scenario
        in
        Check.check_replica ~fault ~nreplicas:replica_count
          ~txs:(txs_or Check.default_replica_txs)
          ~log ?scenario ?only_crash:(opt crash_at) ()
      with
      | Check.Replica_pass { runs; boundaries } ->
        Printf.printf
          "replica campaign: PASS (%d runs, %d primary persist boundaries)\n" runs
          boundaries;
        `Ok ()
      | Check.Replica_fail rf ->
        Printf.printf "replica campaign: FAIL: %s\n  replay: %s\n" rf.Check.rf_reason
          (Check.replica_replay_line rf);
        `Error (false, "replicated-durability failover check failed")
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Config.Invalid_config msg -> `Error (false, msg)
    end
    else if batch then begin
      match
        Check.check_batch ~fault
          ~txs:(txs_or Check.default_batch_txs)
          ~log ?only_crash:(opt crash_at) ?only_crash2:(opt crash2) ()
      with
      | Check.Batch_pass { runs; boundaries } ->
        Printf.printf "batch campaign: PASS (%d runs, %d persist boundaries cut)\n" runs
          boundaries;
        `Ok ()
      | Check.Batch_fail bt ->
        Printf.printf "batch campaign: FAIL: %s\n  replay: %s\n" bt.Check.bt_reason
          (Check.batch_replay_line bt);
        `Error (false, "batch-boundary crash check failed")
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Config.Invalid_config msg -> `Error (false, msg)
    end
    else if shards then begin
      match
        Check.check_shards ~fault ~nshards:shard_count
          ~txs:(txs_or Check.default_shard_txs) ~log ?only_crash:(opt crash_at) ()
      with
      | Check.Shard_pass { runs; boundaries } ->
        Printf.printf "shard campaign: PASS (%d runs, %d persist boundaries cut)\n" runs
          boundaries;
        `Ok ()
      | Check.Shard_fail shf ->
        Printf.printf "shard campaign: FAIL: %s\n  replay: %s\n" shf.Check.shf_reason
          (Check.shard_replay_line shf);
        `Error (false, "sharded cross-commit check failed")
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Config.Invalid_config msg -> `Error (false, msg)
    end
    else if migrate then begin
      match
        Check.check_migrate ~fault ~log ?only_crash:(opt crash_at)
          ?only_crash2:(opt crash2) ()
      with
      | Check.Migrate_pass { runs; boundaries } ->
        Printf.printf "migrate campaign: PASS (%d runs, %d persist boundaries cut)\n"
          runs boundaries;
        `Ok ()
      | Check.Migrate_fail mg ->
        Printf.printf "migrate campaign: FAIL: %s\n  replay: %s\n" mg.Check.mg_reason
          (Check.migrate_replay_line mg);
        `Error (false, "live-migration crash check failed")
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Config.Invalid_config msg -> `Error (false, msg)
    end
    else if snapshot then begin
      match
        Check.check_snapshot ~fault
          ~txs:(txs_or Check.default_snapshot_txs)
          ~log ?only_crash:(opt crash_at) ()
      with
      | Check.Snapshot_pass { runs; boundaries; reads } ->
        Printf.printf
          "snapshot campaign: PASS (%d runs, %d persist boundaries, %d snapshot reads)\n"
          runs boundaries reads;
        `Ok ()
      | Check.Snapshot_fail sn ->
        Printf.printf "snapshot campaign: FAIL: %s\n  replay: %s\n" sn.Check.sn_reason
          (Check.snapshot_replay_line sn);
        `Error (false, "snapshot-read crash check failed")
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Config.Invalid_config msg -> `Error (false, msg)
    end
    else if serve then begin
      match
        Check.check_serve ~fault
          ~txs:(txs_or Check.default_serve_txs)
          ~log ?only_crash:(opt crash_at) ()
      with
      | Check.Serve_pass { runs; boundaries; acked; shed } ->
        Printf.printf
          "serve campaign: PASS (%d runs, %d persist boundaries, %d acked requests, %d \
           shed)\n"
          runs boundaries acked shed;
        `Ok ()
      | Check.Serve_fail sv ->
        Printf.printf "serve campaign: FAIL: %s\n  replay: %s\n" sv.Check.sv_reason
          (Check.serve_replay_line sv);
        `Error (false, "serving front-end crash check failed")
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Config.Invalid_config msg -> `Error (false, msg)
    end
    else if recovery then begin
      match
        let budget =
          let b =
            if quick then Check.smoke_recovery_budget else Check.quick_recovery_budget
          in
          {
            b with
            Check.rec_seeds = (if rec_seeds > 0 then rec_seeds else b.Check.rec_seeds);
          }
        in
        let leg = Option.map Check.leg_of_string leg in
        Check.check_recovery ~fault ~budget ~log ?leg ?crash:(opt crash_at)
          ?crash2:(opt crash2) ?crash3:(opt crash3) ()
      with
      | Check.Recovery_pass { runs; boundaries } ->
        Printf.printf
          "recovery campaign: PASS (%d runs, %d recovery-time boundaries cut)\n" runs
          boundaries;
        `Ok ()
      | Check.Recovery_fail rf ->
        Printf.printf "recovery campaign: FAIL: %s\n  replay: %s\n" rf.Check.rcf_reason
          (Check.recovery_replay_line rf);
        `Error (false, "nested-crash recovery check failed")
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Config.Invalid_config msg -> `Error (false, msg)
    end
    else if daemons then begin
      match
        Check.check_daemons
          ?seeds:(if quick then Some 2 else None)
          ~rate:fault_rate ~log ?only_seed:daemon_seed ?crash:(opt crash_at) ()
      with
      | Check.Daemon_pass { runs; faults; restarts } ->
        Printf.printf
          "daemon campaign: PASS (%d runs, %d faults injected, %d restarts, state \
           exact)\n"
          runs faults restarts;
        `Ok ()
      | Check.Daemon_fail df ->
        Printf.printf "daemon campaign: FAIL: %s\n  replay: %s\n" df.Check.df_reason
          (Check.daemon_replay_line df);
        `Error (false, "daemon fault-injection check failed")
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Config.Invalid_config msg -> `Error (false, msg)
    end
    else if media then begin
      match
        let mode = Option.map Check.media_mode_of_string media_faults in
        let crash = if crash_at > 0 then Some crash_at else None in
        Check.check_media ~fault ~seeds:media_seeds ~log ?mode ?media_seed ?crash ()
      with
      | Check.Media_pass { runs; injected } ->
        Printf.printf "media campaign: PASS (%d runs, %d faults injected, all detected)\n"
          runs injected;
        `Ok ()
      | Check.Media_fail mf ->
        Printf.printf "media campaign: FAIL: %s\n  replay: %s\n" mf.Check.mf_reason
          (Check.media_replay_line mf);
        `Error (false, "media-fault check failed")
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Config.Invalid_config msg -> `Error (false, msg)
    end
    else
      let evict = if evict_frac > 0.0 then Some (evict_frac, evict_seed) else None in
      match
        let suts =
          if system = "all" then
            List.map (fun n -> Check.sut_of_name ~fault n) Check.sut_names
          else [ Check.sut_of_name ~fault system ]
        in
        let check_one sut =
          let txs = txs_or 2 in
          let wls =
            if workload = "all" then Check.workloads_for sut ~threads ~txs
            else [ Check.workload_of_name ~threads ~txs workload ]
          in
          let replaying = sched <> None || crash_at > 0 in
          if replaying then begin
            let spec =
              match sched with Some s -> Check.sched_of_string s | None -> Check.Default
            in
            let crash = if crash_at > 0 then Some crash_at else None in
            List.fold_left
              (fun acc wl ->
                match Check.replay ?evict sut wl ~sched:spec ~crash with
                | None ->
                  Printf.printf "%s/%s sched=%s crash=%d: PASS\n" sut.Check.sut_name
                    wl.Check.wl_name (Check.sched_to_string spec) crash_at;
                  acc
                | Some reason ->
                  Printf.printf "%s/%s sched=%s crash=%d: FAIL: %s\n" sut.Check.sut_name
                    wl.Check.wl_name (Check.sched_to_string spec) crash_at reason;
                  1)
              0 wls
          end
          else begin
            let budget =
              if deep then Check.deep_budget
              else if quick then Check.quick_budget
              else Check.tier1_budget ()
            in
            let budget =
              {
                budget with
                Check.crash_sites =
                  (if crash_budget > 0 then crash_budget else budget.Check.crash_sites);
                sched_seeds =
                  (if sched_seeds >= 0 then sched_seeds else budget.Check.sched_seeds);
              }
            in
            match Check.check_system ~budget ~log ?evict sut wls with
            | Check.Pass { runs; sites } ->
              Printf.printf "%s: PASS (%d runs, %d crash boundaries covered)\n%!"
                sut.Check.sut_name runs sites;
              0
            | Check.Fail f ->
              Printf.printf "%s: FAIL: %s\n  replay: %s\n%!" sut.Check.sut_name
                f.Check.f_reason (Check.replay_line f);
              1
          end
        in
        List.fold_left (fun acc sut -> acc + check_one sut) 0 suts
      with
      | 0 -> `Ok ()
      | _ -> `Error (false, "consistency check failed")
      | exception Invalid_argument msg -> `Error (false, msg)
      | exception Config.Invalid_config msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Systematic crash-consistency checking: enumerate power cuts at every persist \
          boundary and explore thread schedules, verifying recovery against a state-machine \
          oracle.  With --media, a media-fault campaign: seeded bit rot, poison, and stuck \
          lines injected post-crash must always be repaired or reported.  With \
          --recovery, a nested-crash campaign: power cuts inside attach and scrub (two \
          deep) must converge to the uninterrupted recovery.  With --daemons, a \
          fault-injection sweep over supervised pipeline daemons.  With --shards, a \
          sharded cross-commit campaign: power cuts during cross-shard transfers must \
          leave every transfer all-or-nothing under the recovery vote.  With --batch, \
          a batch-boundary campaign: power cuts at every boundary of the pipelined \
          group commit (including mid-pipeline) and re-crashed recoveries must \
          preserve exactly the acknowledged durable prefix.  With --replica, a \
          replicated-durability campaign: kill the primary while the redo log ships \
          to quorum replicas over hostile links, promote, and require every \
          quorum-acked transaction to survive.  With --migrate, a live-migration \
          campaign: power cuts during a 4->8 resharding (double-write window, \
          sealed handoff record, atomic descriptor flip) must leave every key on \
          exactly one shard with no acknowledged write lost.  With --snapshot, a \
          snapshot-read campaign: read-only snapshot readers run in volatile and \
          durable-only mode against pair writers through power cuts; read-sets \
          must never tear and durable-mode values must survive recovery.  With \
          --serve, a serving front-end campaign: client sessions drive requests \
          through the bounded queue, admission gate and durable-watermark acker; \
          power cuts mid-burst must lose no acknowledged request and half-apply \
          no unacknowledged one.")
    Term.(
      ret
        (const run $ system $ workload $ threads $ txs $ deep $ quick $ crash_budget
       $ sched_seeds $ mutate $ sched $ crash_at $ batch $ replica $ replica_count
       $ replica_scenario $ shards $ shard_count $ migrate $ snapshot $ serve $ media
       $ media_faults $ media_seed $ media_seeds $ evict $ evict_seed $ recovery
       $ leg $ crash2 $ crash3 $ rec_seeds $ daemons $ daemon_seed $ fault_rate
       $ verbose))

(* ------------------------------- shard -------------------------------- *)

let shard_cmd =
  let module SB = Dudetm_shard.Shard_bench in
  let nshards =
    Arg.(
      value & opt int 4
      & info [ "n"; "shards" ] ~docv:"N" ~doc:"Independent persistent regions.")
  in
  let cross =
    Arg.(
      value & opt int 10
      & info [ "cross" ] ~docv:"PCT"
          ~doc:"Percentage of transactions that transfer across two shards.")
  in
  let ntxs = Arg.(value & opt int 2000 & info [ "txs" ] ~doc:"Transactions to run.") in
  let workers = Arg.(value & opt int 8 & info [ "workers" ] ~doc:"Worker threads.") in
  let bandwidth =
    Arg.(
      value & opt float 0.25
      & info [ "bandwidth" ] ~doc:"Per-shard NVM write bandwidth, GB/s.")
  in
  let latency =
    Arg.(value & opt int 500 & info [ "latency" ] ~doc:"Persist latency, cycles.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload RNG seed.") in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Trace the run and print per-shard device utilization afterwards.")
  in
  let run nshards cross ntxs workers bandwidth latency seed trace =
    if nshards < 1 || nshards > 60 then `Error (false, "--shards must be in [1, 60]")
    else if cross < 0 || cross > 100 then `Error (false, "--cross must be in [0, 100]")
    else begin
      if trace then Trace.enable ~capacity:65536 ();
      let r =
        SB.run ~seed ~bandwidth ~persist_latency:latency ~ntxs ~workers ~nshards
          ~cross_pct:cross ()
      in
      let dev_accts = if trace then Trace.nvm_dev_accts () else [] in
      if trace then Trace.disable ();
      Printf.printf
        "sharded DUDETM: %d shards, %d transactions, %d workers, %.2f GB/s per shard\n"
        r.SB.sb_nshards r.SB.sb_ntxs workers bandwidth;
      Printf.printf "  cross-shard:      %d of %d transactions (%d%% requested)\n"
        r.SB.sb_cross_txs r.SB.sb_ntxs r.SB.sb_cross_pct;
      Printf.printf "  durable throughput: %s (first commit through drain)\n"
        (H.pp_ktps r.SB.sb_ktps);
      Printf.printf "  cycles:           %d\n" r.SB.sb_cycles;
      Printf.printf "  commit latency:   %s\n" (SB.pp_commit_latency r);
      if dev_accts <> [] then begin
        let total_bytes =
          List.fold_left (fun acc a -> acc + a.Trace.nd_bytes) 0 dev_accts
        in
        Printf.printf "  NVM channel, by shard device:\n";
        Printf.printf "  %-12s %12s %14s %9s %12s\n" "device" "bytes" "cycles" "ops"
          "traffic share";
        List.iter
          (fun a ->
            Printf.printf "  %-12s %12d %14d %9d %11.1f%%\n" a.Trace.nd_dev
              a.Trace.nd_bytes a.Trace.nd_cycles a.Trace.nd_ops
              (100.0 *. float_of_int a.Trace.nd_bytes /. float_of_int (max 1 total_bytes)))
          dev_accts
      end;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Run the partitioned workload on a sharded DUDETM instance (one persist and \
          one reproduce pipeline per region) and report end-to-end durable throughput, \
          the cross-shard mix, and commit-latency percentiles; with --trace, also the \
          per-shard NVM device utilization.")
    Term.(
      ret
        (const run $ nshards $ cross $ ntxs $ workers $ bandwidth $ latency $ seed
       $ trace))

(* ------------------------------- serve -------------------------------- *)

let serve_cmd =
  let module SL = Dudetm_serve.Serve_load in
  let nshards =
    Arg.(value & opt int 2 & info [ "n"; "shards" ] ~docv:"N" ~doc:"Shard count.")
  in
  let tenants = Arg.(value & opt int 4 & info [ "tenants" ] ~doc:"Tenant count.") in
  let sessions =
    Arg.(
      value & opt int 4 & info [ "sessions" ] ~doc:"Client sessions per tenant.")
  in
  let reqs =
    Arg.(
      value & opt int 200 & info [ "reqs" ] ~doc:"Requests per client session.")
  in
  let mode =
    Arg.(
      value
      & opt (enum [ ("open", `Open); ("closed", `Closed) ]) `Open
      & info [ "mode" ] ~docv:"MODE"
          ~doc:
            "Arrival process: open (Poisson at --rate, independent of service \
             time) or closed (one outstanding request per session, --think \
             cycles between replies).")
  in
  let rate =
    Arg.(
      value & opt float 200.0
      & info [ "rate" ] ~docv:"KTPS"
          ~doc:"With --mode open: total offered load, kilo-requests/s.")
  in
  let think =
    Arg.(
      value & opt int 2000
      & info [ "think" ] ~doc:"With --mode closed: think time, cycles.")
  in
  let ro =
    Arg.(
      value & opt int 500
      & info [ "ro" ] ~docv:"PERMILLE"
          ~doc:"Read-only requests per 1000 (reads bypass the admission gate).")
  in
  let theta =
    Arg.(
      value & opt float 0.99
      & info [ "theta" ] ~doc:"Per-tenant Zipf skew exponent.")
  in
  let seed = Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Workload RNG seed.") in
  let run nshards tenants sessions reqs mode rate think ro theta seed =
    if nshards < 1 || nshards > 60 then `Error (false, "--shards must be in [1, 60]")
    else if tenants < 1 then `Error (false, "--tenants must be positive")
    else if sessions < 1 then `Error (false, "--sessions must be positive")
    else begin
      let mode =
        match mode with
        | `Open -> SL.Open { ktps = rate }
        | `Closed -> SL.Closed { think }
      in
      let r =
        SL.run ~theta ~ro_permille:ro ~seed ~nshards ~ntenants:tenants ~sessions
          ~reqs ~mode ()
      in
      Printf.printf
        "serve: %d tenants x %d sessions (%s loop), %d shards, %d reqs/session\n"
        tenants sessions r.SL.r_mode nshards reqs;
      if r.SL.r_mode = "open" then
        Printf.printf "  offered load:     %s\n" (H.pp_ktps r.SL.r_offered_ktps);
      Printf.printf "  goodput:          %s (%d replies)\n"
        (H.pp_ktps r.SL.r_achieved_ktps)
        r.SL.r_done;
      Printf.printf "  shed:             %d (typed Overloaded replies)\n" r.SL.r_shed;
      Printf.printf "  aborted:          %d\n" r.SL.r_aborted;
      let p l q = Dudetm_sim.Stats.Latency.percentile l q in
      Printf.printf "  write latency:    p50 %d / p95 %d / p99 %d cyc\n"
        (p r.SL.r_lat_write 50.0) (p r.SL.r_lat_write 95.0) (p r.SL.r_lat_write 99.0);
      Printf.printf "  read latency:     p50 %d / p95 %d / p99 %d cyc\n"
        (p r.SL.r_lat_read 50.0) (p r.SL.r_lat_read 95.0) (p r.SL.r_lat_read 99.0);
      Printf.printf "  admission gate:   %d trips, %d reopens, queue hwm %d\n"
        r.SL.r_gate_trips r.SL.r_gate_untrips r.SL.r_depth_hwm;
      Printf.printf "  per tenant:       %-8s %10s %8s %12s\n" "tenant" "done" "shed"
        "p99 (cyc)";
      Array.iteri
        (fun i d ->
          Printf.printf "                    %-8d %10d %8d %12d\n" i d
            r.SL.r_tenant_shed.(i)
            (p r.SL.r_tenant_lat.(i) 99.0))
        r.SL.r_tenant_done;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Drive the multi-tenant serving front end (bounded request queue, \
          hysteresis admission gate, deficit-round-robin dispatch, \
          durable-watermark acknowledgements) with open-loop Poisson or \
          closed-loop client sessions over a sharded instance, and report \
          goodput, shed counts, gate transitions and per-tenant latency.")
    Term.(
      ret
        (const run $ nshards $ tenants $ sessions $ reqs $ mode $ rate $ think $ ro
       $ theta $ seed))

(* ------------------------------- scrub -------------------------------- *)

let scrub_cmd =
  let module Scrub = Dudetm_scrub.Scrub in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fault-injection RNG seed.") in
  let faults =
    Arg.(
      value & opt int 3
      & info [ "faults" ] ~doc:"Random media faults to inject before scrubbing.")
  in
  let probe =
    Arg.(
      value & flag
      & info [ "probe-stuck" ] ~doc:"Write-probe every heap line for stuck-at faults.")
  in
  let report_only =
    Arg.(value & flag & info [ "report-only" ] ~doc:"Audit without repairing.")
  in
  let run seed faults probe report_only =
    let cfg =
      {
        Config.default with
        Config.heap_size = 1 lsl 16;
        root_size = 4096;
        nthreads = 3;
        vlog_capacity = 256;
        plog_size = 1 lsl 13;
        meta_size = 8192;
        checkpoint_records = 2;
      }
    in
    let rng = Rng.create seed in
    let t = D.create cfg in
    let nvm = D.nvm t in
    (* Exercise the device with the counter workload, then cut power
       mid-run: the scrub gets a realistic image with live log records. *)
    let crash_cycles = 50_000 + Rng.int rng 200_000 in
    (try
       ignore
         (Sched.run (fun () ->
              D.start t;
              for th = 0 to cfg.Config.nthreads - 1 do
                ignore
                  (Sched.spawn (Printf.sprintf "w%d" th) (fun () ->
                       while true do
                         ignore
                           (D.atomically t ~thread:th (fun tx ->
                                let c = D.read tx 0 in
                                let c1 = Int64.add c 1L in
                                D.write tx (8 + (8 * (Int64.to_int c1 mod 64))) c1;
                                D.write tx 0 c1))
                       done))
              done;
              Sched.advance crash_cycles;
              raise Crashed))
     with Crashed -> ());
    Nvm.crash nvm;
    let lines = Nvm.size nvm / Nvm.line_size nvm in
    for _ = 1 to faults do
      match Rng.int rng 3 with
      | 0 ->
        let off = Rng.int rng (Nvm.size nvm) and bit = Rng.int rng 8 in
        Printf.printf "inject: bit rot at byte %d, bit %d\n" off bit;
        Nvm.inject_fault nvm (Nvm.Bit_rot { off; bit })
      | 1 ->
        let line = Rng.int rng lines in
        Printf.printf "inject: poison line %d\n" line;
        Nvm.inject_fault nvm (Nvm.Poison { line })
      | _ ->
        let line = Rng.int rng (cfg.Config.heap_size / Nvm.line_size nvm) in
        Printf.printf "inject: stuck line %d\n" line;
        Nvm.inject_fault nvm (Nvm.Stuck_line { line })
    done;
    let r = Scrub.scrub ~repair:(not report_only) ~probe_stuck:probe cfg nvm in
    Format.printf "scrub: @[%a@]@." Scrub.pp_report r;
    if r.Scrub.ckpt = `Fatal then
      `Error (false, "both checkpoint slots lost: instance unrecoverable")
    else begin
      let t2, rr = D.attach cfg nvm in
      Printf.printf
        "recovery: durable=%d replayed=%d corrupted_records=%d quarantined_lines=%d\n"
        rr.Dudetm_core.Dudetm.durable rr.Dudetm_core.Dudetm.replayed_txs
        rr.Dudetm_core.Dudetm.corrupted_records rr.Dudetm_core.Dudetm.quarantined_lines;
      if r.Scrub.bad_extents <> [] then begin
        (* Unreconstructible extents: don't refuse service — attach in
           degraded read-only mode so the surviving data stays readable
           while writes are rejected with the reason. *)
        D.freeze t2
          ~reason:
            (Printf.sprintf "%d unreconstructible extent(s) reported by scrub"
               (List.length r.Scrub.bad_extents));
        Printf.printf
          "degraded: attached READ-ONLY (%d unreconstructible extents; writes and \
           allocation will raise Read_only)\n"
          (List.length r.Scrub.bad_extents);
        `Ok ()
      end
      else `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Media-fault scrub demo: exercise a device, crash it, inject seeded media faults \
          (bit rot, poison, stuck lines), then audit and repair via the checksum directory \
          and live log records before recovering.")
    Term.(ret (const run $ seed $ faults $ probe $ report_only))

(* ------------------------------ layout -------------------------------- *)

let layout_cmd =
  let run () =
    let cfg = Config.default in
    Printf.printf "default configuration:\n";
    Printf.printf "  heap:            %d MiB at offset 0\n" (cfg.Config.heap_size lsr 20);
    Printf.printf "  meta block:      %d KiB at 0x%x\n" (cfg.Config.meta_size lsr 10)
      (Config.meta_base cfg);
    Printf.printf "  crc directory:   %d KiB at 0x%x (%d-byte extents)\n"
      (Config.crcdir_size cfg lsr 10) (Config.crcdir_base cfg) cfg.Config.crc_extent;
    Printf.printf "  bad-line table:  %d B at 0x%x (%d entries)\n"
      (Config.badline_size cfg) (Config.badline_base cfg) cfg.Config.badline_capacity;
    Printf.printf "  log rings:       %d x %d KiB starting at 0x%x\n"
      (Config.plog_regions cfg) (cfg.Config.plog_size lsr 10) (Config.plog_base cfg 0);
    Printf.printf "  device size:     %d MiB\n" (Config.nvm_size cfg lsr 20);
    Printf.printf "  threads:         %d\n" cfg.Config.nthreads;
    Printf.printf "  volatile log:    %d entries per thread\n" cfg.Config.vlog_capacity;
    Printf.printf "  NVM:             %.1f GB/s, %d-cycle persists\n"
      cfg.Config.pmem.Dudetm_nvm.Pmem_config.bandwidth_gbps
      cfg.Config.pmem.Dudetm_nvm.Pmem_config.persist_latency
  in
  Cmd.v (Cmd.info "layout" ~doc:"Print the default NVM layout and configuration.")
    Term.(const run $ const ())

let () =
  let doc = "DudeTM: decoupled durable transactions for persistent memory (simulated)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "dudetm" ~doc)
          [
            run_cmd;
            trace_cmd;
            torture_cmd;
            check_cmd;
            shard_cmd;
            serve_cmd;
            scrub_cmd;
            layout_cmd;
          ]))
